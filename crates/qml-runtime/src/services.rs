//! Orthogonal context services exposed by the runtime.
//!
//! §4.3.1 of the paper: "Orthogonal Context Services are system-level
//! capabilities that are separate from an operator's mathematical meaning but
//! necessary to run programs on real hardware ... quantum communication with
//! teleportation ..., error correction ..., and annealing submission." The
//! runtime offers these as explicit service handles derived from the context
//! descriptor — libraries consult them, they never seize global state.

use serde::{Deserialize, Serialize};

use qml_qec::QecService;
use qml_types::{ContextDescriptor, CostHint, JobBundle, QmlError, Result};

/// Estimate of the inter-device communication a partitioned execution would
/// require — the middle layer's analogue of an HPC communication-volume
/// estimate, consumed by schedulers for multi-QPU placement decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunicationEstimate {
    /// Number of carriers placed on the first device.
    pub partition_size: usize,
    /// Entangling operations that straddle the partition (each needs a
    /// teleported gate or an entanglement swap).
    pub cross_partition_operations: u64,
    /// Bell pairs required (one per cross-partition operation).
    pub bell_pairs_required: u64,
}

/// The bundle of orthogonal services the runtime derives from a context.
#[derive(Debug, Clone)]
pub struct ContextServices {
    /// The QEC service, when the context carries a `qec` block.
    pub qec: Option<QecService>,
}

impl ContextServices {
    /// Derive services from a context descriptor. Unknown policies are
    /// reported as errors rather than silently ignored.
    pub fn from_context(context: &ContextDescriptor) -> Result<Self> {
        let qec = context
            .qec
            .as_ref()
            .map(QecService::from_config)
            .transpose()?;
        Ok(ContextServices { qec })
    }

    /// Services for a bundle (empty when the bundle has no context).
    pub fn for_bundle(bundle: &JobBundle) -> Result<Self> {
        match &bundle.context {
            Some(ctx) => ContextServices::from_context(ctx),
            None => Ok(ContextServices { qec: None }),
        }
    }

    /// True if an error-correction policy is active.
    pub fn has_qec(&self) -> bool {
        self.qec.is_some()
    }
}

/// Estimate the communication cost of splitting a bundle's register space
/// after `partition_size` carriers (device A gets carriers
/// `0..partition_size`, device B the rest). Cross-partition entangling
/// operations are counted from the descriptors' cost hints when edge
/// information is available, falling back to a conservative estimate.
pub fn estimate_communication(
    bundle: &JobBundle,
    partition_size: usize,
) -> Result<CommunicationEstimate> {
    let total = bundle.total_width();
    if partition_size == 0 || partition_size >= total {
        return Err(QmlError::Validation(format!(
            "partition size {partition_size} must split the {total}-carrier register space"
        )));
    }
    let offsets = bundle.register_offsets();
    let mut crossings = 0u64;
    for op in &bundle.operators {
        let offset = offsets
            .get(&op.domain_qdt)
            .copied()
            .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
        // Edge-carrying descriptors (ISING_COST_PHASE / ISING_PROBLEM) let us
        // count exactly which interactions straddle the cut.
        let edge_param = op.params.get("edges").or_else(|| op.params.get("j"));
        if let Some(qml_types::ParamValue::List(entries)) = edge_param {
            for entry in entries {
                if let Some(pair) = entry.as_list() {
                    if pair.len() >= 2 {
                        let u = pair[0].as_u64().unwrap_or(0) as usize + offset;
                        let v = pair[1].as_u64().unwrap_or(0) as usize + offset;
                        if (u < partition_size) != (v < partition_size) {
                            crossings += 1;
                        }
                    }
                }
            }
        } else if let Some(hint) = &op.cost_hint {
            // Without structural information assume half the entangling gates
            // straddle the cut — deliberately pessimistic.
            crossings += hint.twoq.unwrap_or(0) / 2;
        }
    }
    Ok(CommunicationEstimate {
        partition_size,
        cross_partition_operations: crossings,
        bell_pairs_required: crossings,
    })
}

/// Attach a communication estimate to a cost hint (communication is the
/// dominant term in the scheduler's ranking, mirroring how HPC schedulers
/// weigh network volume).
pub fn with_communication(hint: CostHint, estimate: &CommunicationEstimate) -> CostHint {
    hint.with_communication(estimate.bell_pairs_required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{ExecConfig, QecConfig};

    fn qaoa_bundle() -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap()
    }

    #[test]
    fn services_from_context_with_qec() {
        let ctx = ContextDescriptor::for_gate(ExecConfig::new("gate.aer_simulator"))
            .with_qec(QecConfig::surface(7));
        let services = ContextServices::from_context(&ctx).unwrap();
        assert!(services.has_qec());
        assert_eq!(services.qec.unwrap().distance, 7);
    }

    #[test]
    fn services_without_context_are_empty() {
        let services = ContextServices::for_bundle(&qaoa_bundle()).unwrap();
        assert!(!services.has_qec());
    }

    #[test]
    fn unknown_qec_family_propagates() {
        let mut qec = QecConfig::surface(5);
        qec.code_family = "mystery".into();
        let ctx = ContextDescriptor::for_gate(ExecConfig::new("gate.aer_simulator")).with_qec(qec);
        assert!(ContextServices::from_context(&ctx).is_err());
    }

    #[test]
    fn communication_estimate_counts_crossing_edges() {
        // C4 edges: (0,1), (1,2), (2,3), (0,3). Splitting after carrier 2
        // leaves (2,3) internal to B, (0,1) internal to A, and (1,2), (0,3)
        // crossing.
        let bundle = qaoa_bundle();
        let estimate = estimate_communication(&bundle, 2).unwrap();
        assert_eq!(estimate.cross_partition_operations, 2);
        assert_eq!(estimate.bell_pairs_required, 2);

        let ising = maxcut_ising_program(&cycle(4)).unwrap();
        let estimate = estimate_communication(&ising, 2).unwrap();
        assert_eq!(estimate.cross_partition_operations, 2);
    }

    #[test]
    fn degenerate_partitions_rejected() {
        let bundle = qaoa_bundle();
        assert!(estimate_communication(&bundle, 0).is_err());
        assert!(estimate_communication(&bundle, 4).is_err());
    }

    #[test]
    fn communication_feeds_into_cost_hints() {
        let bundle = qaoa_bundle();
        let estimate = estimate_communication(&bundle, 2).unwrap();
        let hint = with_communication(CostHint::gates(8, 10), &estimate);
        assert_eq!(hint.communication, Some(2));
        assert!(hint.scheduling_weight() > CostHint::gates(8, 10).scheduling_weight());
    }
}
