//! Job lifecycle and parallel execution.
//!
//! The runtime accepts packaged job bundles (`job.json` artifacts in the
//! paper's workflow), schedules each onto a backend, and executes queued jobs
//! concurrently on crossbeam scoped threads. Job state is shared behind a
//! `parking_lot` mutex so callers can poll status from other threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use qml_backends::ExecutionResult;
use qml_types::{JobBundle, QmlError, Result};

use crate::registry::Scheduler;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Submitted, not yet executed.
    Queued,
    /// Currently executing on a backend.
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error (message attached).
    Failed(String),
}

/// A submitted job: the bundle, its status, and (eventually) its result.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// The submitted bundle.
    pub bundle: JobBundle,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The execution result once completed.
    pub result: Option<ExecutionResult>,
}

/// The middle-layer runtime: a scheduler plus a job store.
pub struct Runtime {
    scheduler: Scheduler,
    jobs: Arc<Mutex<BTreeMap<JobId, Job>>>,
    next_id: Arc<Mutex<u64>>,
}

impl Runtime {
    /// A runtime over the given scheduler.
    pub fn new(scheduler: Scheduler) -> Self {
        Runtime {
            scheduler,
            jobs: Arc::new(Mutex::new(BTreeMap::new())),
            next_id: Arc::new(Mutex::new(0)),
        }
    }

    /// A runtime with the built-in gate and annealing backends.
    pub fn with_default_backends() -> Self {
        Runtime::new(Scheduler::new(
            crate::registry::BackendRegistry::with_default_backends(),
        ))
    }

    /// The scheduler backing this runtime.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Submit a bundle for execution. Validation failures are rejected at
    /// submission time, not at run time.
    pub fn submit(&self, bundle: JobBundle) -> Result<JobId> {
        bundle.validate()?;
        let mut next = self.next_id.lock();
        let id = JobId(*next);
        *next += 1;
        drop(next);
        self.jobs.lock().insert(
            id,
            Job {
                id,
                bundle,
                status: JobStatus::Queued,
                result: None,
            },
        );
        Ok(id)
    }

    /// Status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.jobs.lock().get(&id).map(|j| j.status.clone())
    }

    /// Result of a completed job.
    pub fn result(&self, id: JobId) -> Option<ExecutionResult> {
        self.jobs.lock().get(&id).and_then(|j| j.result.clone())
    }

    /// Ids of all jobs in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.lock().keys().copied().collect()
    }

    /// Execute one queued job synchronously.
    pub fn run_job(&self, id: JobId) -> Result<ExecutionResult> {
        let bundle = {
            let mut jobs = self.jobs.lock();
            let job = jobs
                .get_mut(&id)
                .ok_or_else(|| QmlError::Validation(format!("unknown job id {id:?}")))?;
            if job.status != JobStatus::Queued {
                return Err(QmlError::Validation(format!(
                    "job {id:?} is not queued (status {:?})",
                    job.status
                )));
            }
            job.status = JobStatus::Running;
            job.bundle.clone()
        };

        let outcome = self.scheduler.execute(&bundle);
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id).expect("job disappeared while running");
        match &outcome {
            Ok(result) => {
                job.status = JobStatus::Completed;
                job.result = Some(result.clone());
            }
            Err(err) => {
                job.status = JobStatus::Failed(err.to_string());
            }
        }
        outcome
    }

    /// Execute every queued job, distributing them over crossbeam scoped
    /// threads (at most `max_parallel` at a time). Returns the per-job
    /// outcomes in submission order.
    pub fn run_all(&self, max_parallel: usize) -> Vec<(JobId, Result<ExecutionResult>)> {
        let queued: Vec<JobId> = {
            let jobs = self.jobs.lock();
            jobs.values()
                .filter(|j| j.status == JobStatus::Queued)
                .map(|j| j.id)
                .collect()
        };
        let max_parallel = max_parallel.max(1);
        let outcomes: Mutex<Vec<(JobId, Result<ExecutionResult>)>> = Mutex::new(Vec::new());

        let outcomes_ref = &outcomes;
        for chunk in queued.chunks(max_parallel) {
            crossbeam::scope(|scope| {
                for &id in chunk {
                    scope.spawn(move |_| {
                        let outcome = self.run_job(id);
                        outcomes_ref.lock().push((id, outcome));
                    });
                }
            })
            .expect("job execution thread panicked");
        }

        let mut results = outcomes.into_inner();
        results.sort_by_key(|(id, _)| *id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{
        maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES,
    };
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ContextDescriptor, ExecConfig, JobBundle};

    fn gate_bundle(samples: u64) -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator").with_samples(samples).with_seed(1),
            ))
    }

    fn anneal_bundle(reads: u64) -> JobBundle {
        maxcut_ising_program(&cycle(4)).unwrap().with_context(
            ContextDescriptor::for_anneal("anneal.neal_simulator", AnnealConfig::with_reads(reads)),
        )
    }

    #[test]
    fn submit_run_and_query() {
        let runtime = Runtime::with_default_backends();
        let id = runtime.submit(gate_bundle(128)).unwrap();
        assert_eq!(runtime.status(id), Some(JobStatus::Queued));
        let result = runtime.run_job(id).unwrap();
        assert_eq!(result.shots, 128);
        assert_eq!(runtime.status(id), Some(JobStatus::Completed));
        assert_eq!(runtime.result(id).unwrap().shots, 128);
    }

    #[test]
    fn invalid_bundle_rejected_at_submission() {
        let runtime = Runtime::with_default_backends();
        let bundle = JobBundle::new("empty", vec![], vec![]);
        assert!(runtime.submit(bundle).is_err());
        assert!(runtime.job_ids().is_empty());
    }

    #[test]
    fn running_a_job_twice_is_rejected() {
        let runtime = Runtime::with_default_backends();
        let id = runtime.submit(anneal_bundle(50)).unwrap();
        runtime.run_job(id).unwrap();
        assert!(runtime.run_job(id).is_err());
    }

    #[test]
    fn failed_jobs_record_their_error() {
        let runtime = Runtime::with_default_backends();
        // A QAOA bundle forced onto the annealing engine cannot be realized.
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(10),
            ));
        let id = runtime.submit(bundle).unwrap();
        assert!(runtime.run_job(id).is_err());
        match runtime.status(id).unwrap() {
            JobStatus::Failed(msg) => assert!(msg.contains("ISING_PROBLEM"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn run_all_executes_mixed_workloads_in_parallel() {
        let runtime = Runtime::with_default_backends();
        let ids = vec![
            runtime.submit(gate_bundle(64)).unwrap(),
            runtime.submit(anneal_bundle(64)).unwrap(),
            runtime.submit(gate_bundle(32)).unwrap(),
            runtime.submit(anneal_bundle(32)).unwrap(),
        ];
        let outcomes = runtime.run_all(4);
        assert_eq!(outcomes.len(), 4);
        for (id, outcome) in &outcomes {
            assert!(outcome.is_ok(), "job {id:?} failed: {outcome:?}");
            assert_eq!(runtime.status(*id), Some(JobStatus::Completed));
        }
        // Gate jobs went to the gate backend, anneal jobs to the annealer.
        assert_eq!(runtime.result(ids[0]).unwrap().backend, "qml-gate-simulator");
        assert_eq!(runtime.result(ids[1]).unwrap().backend, "qml-simulated-annealer");
    }

    #[test]
    fn run_all_with_single_thread_budget() {
        let runtime = Runtime::with_default_backends();
        runtime.submit(gate_bundle(16)).unwrap();
        runtime.submit(anneal_bundle(16)).unwrap();
        let outcomes = runtime.run_all(1);
        assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
    }
}
