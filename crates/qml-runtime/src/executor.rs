//! Job lifecycle and parallel execution.
//!
//! The runtime accepts packaged job bundles (`job.json` artifacts in the
//! paper's workflow), schedules each onto a backend, and executes queued jobs
//! on a **work-stealing worker pool**: queued jobs are ranked by descriptor
//! cost hints (longest first, the classic LPT heuristic), dealt round-robin
//! onto per-worker deques, and idle workers steal from the back of busy
//! workers' deques — so one slow job never stalls the rest of its batch the
//! way the old fixed-chunk barrier did. Job state is shared behind a
//! `parking_lot` mutex so callers can poll status from other threads, and all
//! executions share the runtime's transpilation/lowering cache.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use qml_backends::{ExecutionResult, TranspileCache};
use qml_observe::{NoopTracer, Stage, Tracer};
use qml_types::{JobBundle, QmlError, Result};

use crate::registry::{Placement, Scheduler};

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Submitted, not yet executed.
    Queued,
    /// Currently executing on a backend.
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error (message attached).
    Failed(String),
}

/// A submitted job: the bundle, its status, and (eventually) its result.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// The submitted bundle.
    pub bundle: JobBundle,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// The execution result once completed.
    pub result: Option<ExecutionResult>,
}

/// Everything the work-stealing pool records about one executed job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Identifier of the job.
    pub id: JobId,
    /// The execution result or the error that failed the job.
    pub result: Result<ExecutionResult>,
    /// Name of the backend the job was placed on (present for failed
    /// executions too; `None` only when placement itself failed).
    pub backend: Option<String>,
    /// The fleet device the dispatch was routed to, echoed from
    /// [`JobDispatch::device`](crate::pool::JobDispatch::device). `None` on
    /// device-blind paths (one-shot drains, manual `run_job`).
    pub device: Option<Arc<str>>,
    /// Wall-clock execution time of this job.
    pub duration: Duration,
    /// Index of the pool worker that executed the job.
    pub worker: usize,
    /// True if the job was stolen from another worker's deque.
    pub stolen: bool,
}

/// Record a claimed job's terminal state from its execution outcome — the
/// single transition shared by the solo and batched execution paths.
fn record_terminal(job: &mut Job, outcome: &Result<ExecutionResult>) {
    match outcome {
        Ok(result) => {
            job.status = JobStatus::Completed;
            job.result = Some(result.clone());
        }
        Err(err) => {
            job.status = JobStatus::Failed(err.to_string());
        }
    }
}

/// The middle-layer runtime: a scheduler, a job store, and a shared
/// transpilation/lowering cache.
pub struct Runtime {
    scheduler: Scheduler,
    jobs: Arc<Mutex<BTreeMap<JobId, Job>>>,
    next_id: Arc<Mutex<u64>>,
    cache: Arc<TranspileCache>,
    /// Stage-event sink for per-job `plan`/`bound` events from the execution
    /// paths. [`NoopTracer`] by default; a service wanting end-to-end traces
    /// installs its shared tracer via [`Runtime::set_tracer`] so runtime
    /// events share the service epoch.
    tracer: Arc<dyn Tracer>,
}

impl Runtime {
    /// A runtime over the given scheduler, with a fresh cache.
    pub fn new(scheduler: Scheduler) -> Self {
        Runtime::with_cache(scheduler, Arc::new(TranspileCache::new()))
    }

    /// A runtime sharing an existing transpilation/lowering cache (e.g. one
    /// owned by a service spanning several runtimes).
    pub fn with_cache(scheduler: Scheduler, cache: Arc<TranspileCache>) -> Self {
        Runtime {
            scheduler,
            jobs: Arc::new(Mutex::new(BTreeMap::new())),
            next_id: Arc::new(Mutex::new(0)),
            cache,
            tracer: Arc::new(NoopTracer),
        }
    }

    /// The transpilation/lowering cache shared by this runtime's executions.
    pub fn cache(&self) -> &Arc<TranspileCache> {
        &self.cache
    }

    /// Install a stage-event tracer (before the runtime is shared): the
    /// batch execution path emits per-job `plan` (cache hit/miss, attributed
    /// realization time) and `bound` events through it. Callers that also
    /// trace submission/scheduling should pass the *same* tracer instance so
    /// all timestamps share one epoch.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// The installed stage-event tracer ([`NoopTracer`] unless
    /// [`Runtime::set_tracer`] replaced it).
    pub fn tracer(&self) -> &Arc<dyn Tracer> {
        &self.tracer
    }

    /// A runtime with the built-in gate and annealing backends.
    pub fn with_default_backends() -> Self {
        Runtime::new(Scheduler::new(
            crate::registry::BackendRegistry::with_default_backends(),
        ))
    }

    /// The scheduler backing this runtime.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Submit a bundle for execution. Validation failures are rejected at
    /// submission time, not at run time.
    pub fn submit(&self, bundle: JobBundle) -> Result<JobId> {
        bundle.validate()?;
        let mut next = self.next_id.lock();
        let id = JobId(*next);
        *next += 1;
        drop(next);
        self.jobs.lock().insert(
            id,
            Job {
                id,
                bundle,
                status: JobStatus::Queued,
                result: None,
            },
        );
        Ok(id)
    }

    /// Status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.jobs.lock().get(&id).map(|j| j.status.clone())
    }

    /// Result of a completed job.
    pub fn result(&self, id: JobId) -> Option<ExecutionResult> {
        self.jobs.lock().get(&id).and_then(|j| j.result.clone())
    }

    /// Ids of all jobs in submission order.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.lock().keys().copied().collect()
    }

    /// Number of jobs still waiting to execute.
    pub fn queue_depth(&self) -> usize {
        self.jobs
            .lock()
            .values()
            .filter(|j| j.status == JobStatus::Queued)
            .count()
    }

    /// Execute one queued job synchronously.
    pub fn run_job(&self, id: JobId) -> Result<ExecutionResult> {
        self.run_job_placed(id, None)
    }

    /// Atomically claim a queued job for execution (Queued → Running),
    /// returning its bundle. `Err` if the id is unknown, `Ok(None)` if the
    /// job was already claimed — the signal concurrent drains use to skip a
    /// job another drain owns rather than report a phantom failure.
    pub(crate) fn claim(&self, id: JobId) -> Result<Option<JobBundle>> {
        let mut jobs = self.jobs.lock();
        let job = jobs
            .get_mut(&id)
            .ok_or_else(|| QmlError::Validation(format!("unknown job id {id:?}")))?;
        if job.status != JobStatus::Queued {
            return Ok(None);
        }
        job.status = JobStatus::Running;
        Ok(Some(job.bundle.clone()))
    }

    /// Return a *failed* job to the queue for another execution attempt
    /// (Failed → Queued, clearing any stale result). Used by fleet
    /// schedulers to retry a job whose device — not the job itself — faulted.
    /// Returns false if the id is unknown or the job is not in the Failed
    /// state (completed, running, and queued jobs are left untouched), so a
    /// requeue can never duplicate an outcome that already settled.
    pub fn requeue(&self, id: JobId) -> bool {
        let mut jobs = self.jobs.lock();
        match jobs.get_mut(&id) {
            Some(job) if matches!(job.status, JobStatus::Failed(_)) => {
                job.status = JobStatus::Queued;
                job.result = None;
                true
            }
            _ => false,
        }
    }

    /// Execute one queued job, reusing an already-computed placement when the
    /// caller has one.
    fn run_job_placed(&self, id: JobId, placement: Option<&Placement>) -> Result<ExecutionResult> {
        let Some(bundle) = self.claim(id)? else {
            return Err(QmlError::Validation(format!(
                "job {id:?} is not queued (status {:?})",
                self.status(id).expect("job exists")
            )));
        };
        self.execute_claimed(id, bundle, placement)
    }

    /// Execute a job already claimed (Running) by the caller and record its
    /// terminal state.
    pub(crate) fn execute_claimed(
        &self,
        id: JobId,
        bundle: JobBundle,
        placement: Option<&Placement>,
    ) -> Result<ExecutionResult> {
        let outcome = match placement {
            Some(placement) => placement.backend.execute_cached(&bundle, &self.cache),
            None => self.scheduler.execute_cached(&bundle, &self.cache),
        };
        let mut jobs = self.jobs.lock();
        let job = jobs.get_mut(&id).expect("job disappeared while running");
        record_terminal(job, &outcome);
        outcome
    }

    /// Execute a micro-batch of already-claimed jobs through the backend's
    /// device-level batch path
    /// ([`qml_backends::Backend::execute_batch_timed`]) and record each
    /// member's terminal state. Outcomes are returned in input order with an
    /// **honest per-member duration**: each member's own bind + sample time
    /// plus a share of the group's one plan realization proportional to that
    /// time — never an even split of the batch's wall-clock, which is
    /// fiction whenever members differ (e.g. a shot ladder). One failing
    /// member never poisons the rest.
    ///
    /// All members are expected to share the (optional) placement — the
    /// service's fair scheduler only coalesces jobs with one batch key, which
    /// implies one backend. Without a placement the whole batch falls back to
    /// per-member scheduled execution, timed individually.
    ///
    /// The gate plane binds each member as a zero-copy overlay over the
    /// shared plan circuit and samples through the worker thread's scratch
    /// pool (`qml_sim::with_thread_scratch`): amplitude, CDF, and draw
    /// buffers are reused across members, so a warm batch runs
    /// allocation-free after its first member.
    pub(crate) fn execute_claimed_batch(
        &self,
        claimed: Vec<(JobId, JobBundle)>,
        placement: Option<&Placement>,
    ) -> Vec<(JobId, Result<ExecutionResult>, Duration)> {
        let (ids, bundles): (Vec<JobId>, Vec<JobBundle>) = claimed.into_iter().unzip();
        let (results, durations): (Vec<Result<ExecutionResult>>, Vec<Duration>) = match placement {
            Some(placement) => {
                let (results, timings) =
                    placement.backend.execute_batch_timed(&bundles, &self.cache);
                let durations = timings.attributed();
                // Per-member plan/bound stage events. Emitted in lifecycle
                // order (`plan` then `bound`) once the batch call has
                // resolved — that is when the per-member cache attribution
                // and realization share are known; the runtime is
                // tenant-blind, so attribution by job id is what it records.
                if self.tracer.enabled() {
                    for (i, id) in ids.iter().enumerate() {
                        if let Some(cache_hit) = timings.plan_hit(i) {
                            let own = timings.members.get(i).copied().unwrap_or_default();
                            let realize = durations
                                .get(i)
                                .copied()
                                .unwrap_or_default()
                                .saturating_sub(own);
                            self.tracer.record(
                                id.0,
                                None,
                                None,
                                Stage::Plan {
                                    cache_hit,
                                    realize_us: realize.as_micros() as u64,
                                },
                            );
                        }
                        if results.get(i).is_some_and(|r| r.is_ok()) {
                            self.tracer.record(id.0, None, None, Stage::Bound);
                        }
                    }
                }
                (results, durations)
            }
            None => {
                let trace = self.tracer.enabled();
                bundles
                    .iter()
                    .zip(&ids)
                    .map(|(bundle, id)| {
                        let started = Instant::now();
                        let result = self.scheduler.execute_cached(bundle, &self.cache);
                        if trace && result.is_ok() {
                            self.tracer.record(id.0, None, None, Stage::Bound);
                        }
                        (result, started.elapsed())
                    })
                    .unzip()
            }
        };
        let mut jobs = self.jobs.lock();
        for (id, outcome) in ids.iter().zip(&results) {
            let job = jobs.get_mut(id).expect("job disappeared while running");
            record_terminal(job, outcome);
        }
        drop(jobs);
        ids.into_iter()
            .zip(results.into_iter().zip(durations))
            .map(|(id, (result, duration))| (id, result, duration))
            .collect()
    }

    /// Execute every queued job on the work-stealing pool with at most
    /// `max_parallel` workers. Returns the per-job outcomes in submission
    /// order. Kept as a thin wrapper over [`Runtime::run_all_detailed`] for
    /// backward compatibility.
    pub fn run_all(&self, max_parallel: usize) -> Vec<(JobId, Result<ExecutionResult>)> {
        let mut outcomes: Vec<(JobId, Result<ExecutionResult>)> = self
            .run_all_detailed(max_parallel)
            .into_iter()
            .map(|o| (o.id, o.result))
            .collect();
        outcomes.sort_by_key(|(id, _)| *id);
        outcomes
    }

    /// Execute every queued job on a work-stealing pool of `num_workers`
    /// threads and report detailed per-job outcomes (in completion order).
    ///
    /// Scheduling policy:
    ///
    /// 1. Queued jobs are ranked by the scheduler's cost estimate for their
    ///    placement (descriptor cost hints — the paper's HPC-scheduler
    ///    analogy), longest first, which minimizes makespan under the LPT
    ///    heuristic.
    /// 2. Ranked jobs are dealt round-robin onto one deque per worker.
    /// 3. Each worker drains its own deque from the front; an idle worker
    ///    steals from the **back** of the busiest other deque, so a single
    ///    slow job delays only the worker executing it.
    pub fn run_all_detailed(&self, num_workers: usize) -> Vec<JobOutcome> {
        // Snapshot queued bundles under the lock, then run the placement /
        // cost-ranking pass outside it so status()/submit() callers never
        // block behind an O(batch) scheduler scan.
        let queued: Vec<(JobId, JobBundle)> = {
            let jobs = self.jobs.lock();
            jobs.values()
                .filter(|j| j.status == JobStatus::Queued)
                .map(|j| (j.id, j.bundle.clone()))
                .collect()
        };
        // One placement pass serves both the cost ranking and execution: the
        // chosen backend is carried to the worker so jobs are not re-placed
        // on the hot path. Jobs whose placement fails are still dealt out;
        // they fail (and record their error) at execution time.
        let mut placements: HashMap<JobId, Placement> = HashMap::new();
        let mut ranked: Vec<(JobId, f64)> = queued
            .into_iter()
            .map(|(id, bundle)| {
                let cost = match self.scheduler.place(&bundle) {
                    Ok(placement) => {
                        let cost = placement.estimated_cost;
                        placements.insert(id, placement);
                        cost
                    }
                    Err(_) => 0.0,
                };
                (id, cost)
            })
            .collect();
        if ranked.is_empty() {
            return Vec::new();
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let num_workers = num_workers.max(1).min(ranked.len());
        let deques: Vec<Mutex<VecDeque<JobId>>> = (0..num_workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (slot, (id, _cost)) in ranked.iter().enumerate() {
            deques[slot % num_workers].lock().push_back(*id);
        }

        let outcomes: Mutex<Vec<JobOutcome>> = Mutex::new(Vec::with_capacity(ranked.len()));
        let deques_ref = &deques;
        let outcomes_ref = &outcomes;
        let placements_ref = &placements;
        crossbeam::scope(|scope| {
            for worker in 0..num_workers {
                scope.spawn(move |_| loop {
                    // Own deque first (front); when empty, try to steal from
                    // the back of *every* other deque, deepest first. Only
                    // when all deques are seen empty may the worker exit —
                    // jobs are never re-queued during a drain, so "all empty"
                    // is a stable termination condition (a victim draining
                    // between the scan and the steal just moves us to the
                    // next victim, not to termination).
                    let mut claimed: Option<(JobId, bool)> =
                        deques_ref[worker].lock().pop_front().map(|id| (id, false));
                    if claimed.is_none() {
                        let mut victims: Vec<(usize, usize)> = (0..deques_ref.len())
                            .filter(|&v| v != worker)
                            .map(|v| (deques_ref[v].lock().len(), v))
                            .collect();
                        victims.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));
                        for (_depth, v) in victims {
                            if let Some(id) = deques_ref[v].lock().pop_back() {
                                claimed = Some((id, true));
                                break;
                            }
                        }
                    }
                    let Some((id, stolen)) = claimed else {
                        break;
                    };
                    // A concurrent drain may have raced us to this job; a
                    // lost claim is silently skipped, not a phantom failure.
                    let Ok(Some(bundle)) = self.claim(id) else {
                        continue;
                    };
                    let placement = placements_ref.get(&id);
                    let started = Instant::now();
                    let result = self.execute_claimed(id, bundle, placement);
                    let duration = started.elapsed();
                    // Attribute the job to its placed backend even when the
                    // execution itself failed.
                    let backend = result
                        .as_ref()
                        .ok()
                        .map(|r| r.backend.clone())
                        .or_else(|| placement.map(|p| p.backend.name().to_string()));
                    outcomes_ref.lock().push(JobOutcome {
                        id,
                        result,
                        backend,
                        device: None,
                        duration,
                        worker,
                        stolen,
                    });
                });
            }
        })
        .expect("job execution thread panicked");

        outcomes.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qml_algorithms::{maxcut_ising_program, qaoa_maxcut_program, QaoaSchedule, RING_P1_ANGLES};
    use qml_graph::cycle;
    use qml_types::{AnnealConfig, ContextDescriptor, ExecConfig, JobBundle};

    fn gate_bundle(samples: u64) -> JobBundle {
        qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_gate(
                ExecConfig::new("gate.aer_simulator")
                    .with_samples(samples)
                    .with_seed(1),
            ))
    }

    fn anneal_bundle(reads: u64) -> JobBundle {
        maxcut_ising_program(&cycle(4))
            .unwrap()
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(reads),
            ))
    }

    #[test]
    fn submit_run_and_query() {
        let runtime = Runtime::with_default_backends();
        let id = runtime.submit(gate_bundle(128)).unwrap();
        assert_eq!(runtime.status(id), Some(JobStatus::Queued));
        let result = runtime.run_job(id).unwrap();
        assert_eq!(result.shots, 128);
        assert_eq!(runtime.status(id), Some(JobStatus::Completed));
        assert_eq!(runtime.result(id).unwrap().shots, 128);
    }

    #[test]
    fn invalid_bundle_rejected_at_submission() {
        let runtime = Runtime::with_default_backends();
        let bundle = JobBundle::new("empty", vec![], vec![]);
        assert!(runtime.submit(bundle).is_err());
        assert!(runtime.job_ids().is_empty());
    }

    #[test]
    fn running_a_job_twice_is_rejected() {
        let runtime = Runtime::with_default_backends();
        let id = runtime.submit(anneal_bundle(50)).unwrap();
        runtime.run_job(id).unwrap();
        assert!(runtime.run_job(id).is_err());
    }

    #[test]
    fn failed_jobs_record_their_error() {
        let runtime = Runtime::with_default_backends();
        // A QAOA bundle forced onto the annealing engine cannot be realized.
        let bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(10),
            ));
        let id = runtime.submit(bundle).unwrap();
        assert!(runtime.run_job(id).is_err());
        match runtime.status(id).unwrap() {
            JobStatus::Failed(msg) => assert!(msg.contains("ISING_PROBLEM"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn run_all_executes_mixed_workloads_in_parallel() {
        let runtime = Runtime::with_default_backends();
        let ids = [
            runtime.submit(gate_bundle(64)).unwrap(),
            runtime.submit(anneal_bundle(64)).unwrap(),
            runtime.submit(gate_bundle(32)).unwrap(),
            runtime.submit(anneal_bundle(32)).unwrap(),
        ];
        let outcomes = runtime.run_all(4);
        assert_eq!(outcomes.len(), 4);
        for (id, outcome) in &outcomes {
            assert!(outcome.is_ok(), "job {id:?} failed: {outcome:?}");
            assert_eq!(runtime.status(*id), Some(JobStatus::Completed));
        }
        // Gate jobs went to the gate backend, anneal jobs to the annealer.
        assert_eq!(
            runtime.result(ids[0]).unwrap().backend,
            "qml-gate-simulator"
        );
        assert_eq!(
            runtime.result(ids[1]).unwrap().backend,
            "qml-simulated-annealer"
        );
    }

    #[test]
    fn run_all_with_single_thread_budget() {
        let runtime = Runtime::with_default_backends();
        runtime.submit(gate_bundle(16)).unwrap();
        runtime.submit(anneal_bundle(16)).unwrap();
        let outcomes = runtime.run_all(1);
        assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
    }

    #[test]
    fn work_stealing_pool_drains_every_job() {
        // More jobs than workers: everything must complete exactly once, and
        // the detailed outcomes must cover every submitted id.
        let runtime = Runtime::with_default_backends();
        let mut ids = Vec::new();
        for i in 0..12 {
            let bundle = if i % 2 == 0 {
                gate_bundle(32)
            } else {
                anneal_bundle(32)
            };
            ids.push(runtime.submit(bundle).unwrap());
        }
        let outcomes = runtime.run_all_detailed(3);
        assert_eq!(outcomes.len(), 12);
        let mut seen: Vec<JobId> = outcomes.iter().map(|o| o.id).collect();
        seen.sort();
        assert_eq!(seen, ids);
        for outcome in &outcomes {
            assert!(outcome.result.is_ok(), "{:?}", outcome.result);
            assert!(outcome.worker < 3);
            assert!(outcome.backend.is_some());
        }
        assert!(runtime
            .job_ids()
            .iter()
            .all(|id| runtime.status(*id) == Some(JobStatus::Completed)));
    }

    #[test]
    fn repeated_intents_hit_the_runtime_cache() {
        let runtime = Runtime::with_default_backends();
        for _ in 0..4 {
            runtime.submit(gate_bundle(32)).unwrap();
        }
        let outcomes = runtime.run_all(4);
        assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
        let stats = runtime.cache().gate_stats();
        assert_eq!(
            stats.misses, 1,
            "one transpilation for four identical intents"
        );
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn failed_job_does_not_poison_the_batch() {
        let runtime = Runtime::with_default_backends();
        let good = runtime.submit(gate_bundle(16)).unwrap();
        // A QAOA bundle forced onto the annealing engine fails at run time.
        let bad_bundle = qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
            .unwrap()
            .with_context(ContextDescriptor::for_anneal(
                "anneal.neal_simulator",
                AnnealConfig::with_reads(10),
            ));
        let bad = runtime.submit(bad_bundle).unwrap();
        let good2 = runtime.submit(anneal_bundle(16)).unwrap();

        let outcomes = runtime.run_all(2);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(runtime.status(good), Some(JobStatus::Completed));
        assert_eq!(runtime.status(good2), Some(JobStatus::Completed));
        assert!(matches!(runtime.status(bad), Some(JobStatus::Failed(_))));
    }

    #[test]
    fn concurrent_drains_never_double_run_or_phantom_fail() {
        // Two simultaneous drains over one queue: every job executes exactly
        // once, the combined outcome count equals the job count, and no job
        // ends Failed from a lost claim race.
        let runtime = Runtime::with_default_backends();
        for i in 0..10 {
            let bundle = if i % 2 == 0 {
                gate_bundle(16)
            } else {
                anneal_bundle(16)
            };
            runtime.submit(bundle).unwrap();
        }
        let (a, b) = crossbeam::scope(|scope| {
            let h1 = scope.spawn(|_| runtime.run_all_detailed(2));
            let h2 = scope.spawn(|_| runtime.run_all_detailed(2));
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert_eq!(a.len() + b.len(), 10, "each job reported exactly once");
        let mut seen: Vec<JobId> = a.iter().chain(b.iter()).map(|o| o.id).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 10);
        for outcome in a.iter().chain(b.iter()) {
            assert!(outcome.result.is_ok(), "{:?}", outcome.result);
        }
        assert!(runtime
            .job_ids()
            .iter()
            .all(|id| runtime.status(*id) == Some(JobStatus::Completed)));
    }

    #[test]
    fn run_all_reports_submission_order() {
        let runtime = Runtime::with_default_backends();
        let ids = vec![
            runtime.submit(gate_bundle(16)).unwrap(),
            runtime.submit(anneal_bundle(16)).unwrap(),
            runtime.submit(gate_bundle(8)).unwrap(),
        ];
        let outcomes = runtime.run_all(2);
        let reported: Vec<JobId> = outcomes.iter().map(|(id, _)| *id).collect();
        assert_eq!(reported, ids);
    }
}
