//! # qml-runtime — registry, scheduler, job lifecycle, and context services
//!
//! The runtime is the layer between packaged job bundles and backends:
//!
//! * [`BackendRegistry`] — the available backends (gate simulator, annealer,
//!   and any user-registered implementation of [`qml_backends::Backend`]).
//! * [`Scheduler`] — honours an explicit engine request from the context, and
//!   otherwise ranks family-compatible backends by descriptor cost hints —
//!   the paper's HPC-scheduler analogy (§2).
//! * [`Runtime`] — job submission, status tracking, and parallel execution of
//!   queued jobs on a cost-ranked, work-stealing worker pool that shares one
//!   transpilation/lowering cache across all executions.
//! * [`pool`] — the **streaming** executor: a feed-while-running
//!   [`WorkerPool`] over a shared [`JobSource`] injector, so long-lived
//!   services accept and execute work continuously instead of draining
//!   one-shot snapshots ([`Runtime::run_all_detailed`] remains the one-shot
//!   specialization).
//! * [`services`] — orthogonal context services (§4.3.1): the QEC service and
//!   a communication estimator for partitioned (multi-QPU) execution.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod pool;
pub mod registry;
pub mod services;

pub use executor::{Job, JobId, JobOutcome, JobStatus, Runtime};
pub use pool::{Feed, JobDispatch, JobSource, OutcomeSink, WorkerPool};
pub use registry::{BackendRegistry, Placement, Scheduler};
pub use services::{
    estimate_communication, with_communication, CommunicationEstimate, ContextServices,
};
