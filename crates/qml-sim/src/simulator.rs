//! The state-vector simulator: the repository's stand-in for IBM Qiskit Aer.
//!
//! The paper's gate path executes circuits on the Aer state-vector simulator
//! with a shot count and seed (Listing 4: `samples = 4096`, `seed = 42`).
//! [`Simulator`] reproduces exactly that contract: exact amplitudes, then
//! multinomial shot sampling with a reproducible seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::circuit::{Circuit, CircuitView};
use crate::state::{DegenerateStateError, StateVector};

/// Reusable per-worker simulation buffers: the 2ⁿ amplitude vector plus the
/// sampling CDF and draw scratch. A worker draining a 16-member device
/// micro-batch through [`Simulator::run_view_with_scratch`] grows these once
/// and reuses them for every member.
#[derive(Debug, Default)]
pub struct SimScratch {
    amps: Vec<crate::complex::Complex64>,
    cdf: Vec<f64>,
    draws: Vec<f64>,
    amp_allocations: u64,
}

impl SimScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times the amplitude buffer had to grow (i.e. actually
    /// allocate) since this scratch was created. A batch of same-width
    /// circuits should report exactly 1.
    pub fn amp_allocations(&self) -> u64 {
        self.amp_allocations
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// Run `f` with this worker thread's shared [`SimScratch`]. Executor workers
/// call this once per claimed batch so every member reuses one amplitude
/// buffer.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut SimScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Shot-sampled execution result.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Observed bitstrings (character `j` = classical bit `j`) with counts.
    pub counts: BTreeMap<String, u64>,
    /// Number of shots drawn.
    pub shots: u64,
    /// Seed used for sampling.
    pub seed: u64,
}

impl SimulationResult {
    /// Empirical probability of a word.
    pub fn probability(&self, word: &str) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(word).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// The most frequent word (ties broken lexicographically).
    pub fn most_frequent(&self) -> Option<(&str, u64)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(w, &n)| (w.as_str(), n))
    }
}

/// An ideal (noise-free) state-vector simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulator;

impl Simulator {
    /// Create a simulator.
    pub fn new() -> Self {
        Simulator
    }

    /// Evolve |0...0⟩ through the circuit and return the final state vector
    /// (measurements are ignored — this is the exact, pre-measurement state).
    pub fn statevector(&self, circuit: &Circuit) -> StateVector {
        self.statevector_view(circuit)
    }

    /// Evolve |0...0⟩ through any [`CircuitView`] — a plain [`Circuit`] or a
    /// zero-copy [`crate::overlay::BoundCircuit`] — without materializing an
    /// owned circuit.
    pub fn statevector_view<C: CircuitView + ?Sized>(&self, view: &C) -> StateVector {
        let mut sv = StateVector::zero_state(view.width());
        sv.apply_view(view);
        sv
    }

    /// Run the circuit for `shots` samples of its measured qubits.
    ///
    /// # Panics
    /// Panics if the circuit declares no measurements — implicit "measure
    /// everything" defaults are exactly what the middle layer forbids — or if
    /// the final state is degenerate (all-zero / non-finite amplitudes);
    /// callers that must not panic use [`Simulator::try_run_view`].
    pub fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> SimulationResult {
        self.try_run_view(circuit, shots, seed)
            .expect("cannot sample a degenerate state")
    }

    /// [`Simulator::run`] generalized over [`CircuitView`], with the
    /// degenerate-state case surfaced as an error instead of a panic.
    /// Allocates fresh scratch; the batch hot path uses
    /// [`Simulator::run_view_with_scratch`].
    pub fn try_run_view<C: CircuitView + ?Sized>(
        &self,
        view: &C,
        shots: u64,
        seed: u64,
    ) -> Result<SimulationResult, DegenerateStateError> {
        let mut scratch = SimScratch::new();
        self.run_view_with_scratch(view, shots, seed, &mut scratch)
    }

    /// The allocation-free execute path: evolve the view's state into the
    /// scratch amplitude buffer (reused across calls — one allocation per
    /// worker per width, not one per job) and vector-sample its measured
    /// qubits through the scratch CDF/draw buffers.
    ///
    /// # Panics
    /// Panics if the view declares no measurements.
    pub fn run_view_with_scratch<C: CircuitView + ?Sized>(
        &self,
        view: &C,
        shots: u64,
        seed: u64,
        scratch: &mut SimScratch,
    ) -> Result<SimulationResult, DegenerateStateError> {
        assert!(
            !view.measurement_map().is_empty(),
            "circuit has no measurements; the middle layer forbids implicit measurement"
        );
        if scratch.amps.capacity() < (1usize << view.width()) {
            scratch.amp_allocations += 1;
        }
        let mut sv = StateVector::zero_state_in(view.width(), std::mem::take(&mut scratch.amps));
        sv.apply_view(view);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sv.sample_counts_with(
            view.measurement_map(),
            shots,
            &mut rng,
            &mut scratch.cdf,
            &mut scratch.draws,
        );
        // Hand the amplitude buffer back before propagating any sampling
        // error, so the pool survives degenerate jobs too.
        scratch.amps = sv.into_amps();
        Ok(SimulationResult {
            counts: counts?,
            shots,
            seed,
        })
    }

    /// Exact outcome distribution of the measured qubits (no sampling noise).
    pub fn exact_distribution(&self, circuit: &Circuit) -> BTreeMap<String, f64> {
        assert!(
            circuit.num_clbits() > 0,
            "circuit has no measurements; the middle layer forbids implicit measurement"
        );
        let sv = self.statevector(circuit);
        sv.marginal_probabilities(circuit.measured())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::qft_circuit;
    use crate::gate::Gate;

    #[test]
    fn bell_counts_only_00_and_11() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 1)]);
        qc.measure_all();
        let result = Simulator::new().run(&qc, 4096, 42);
        assert_eq!(result.shots, 4096);
        assert_eq!(result.counts.len(), 2);
        assert!(result.counts.contains_key("00"));
        assert!(result.counts.contains_key("11"));
        assert!((result.probability("00") - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut qc = Circuit::new(3);
        qc.extend(&[Gate::H(0), Gate::H(1), Gate::H(2)]);
        qc.measure_all();
        let sim = Simulator::new();
        assert_eq!(sim.run(&qc, 1000, 7).counts, sim.run(&qc, 1000, 7).counts);
        assert_ne!(sim.run(&qc, 1000, 7).counts, sim.run(&qc, 1000, 8).counts);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn unmeasured_circuit_panics() {
        let mut qc = Circuit::new(1);
        qc.push(Gate::H(0));
        Simulator::new().run(&qc, 10, 0);
    }

    #[test]
    fn exact_distribution_matches_theory() {
        let mut qc = Circuit::new(1);
        qc.push(Gate::Ry(0, (2.0 * (0.3f64).asin()).into())); // P(1) = 0.09
        qc.measure_all();
        let dist = Simulator::new().exact_distribution(&qc);
        assert!((dist["1"] - 0.09).abs() < 1e-9);
        assert!((dist["0"] - 0.91).abs() < 1e-9);
    }

    #[test]
    fn listing1_qft_on_zero_state_is_uniform() {
        // The motivational example: 10-qubit QFT measured with 10 000 shots.
        // On |0...0⟩ the QFT produces the uniform distribution.
        let n = 10;
        let mut qc = qft_circuit(n, 0, true, false);
        qc.measure_all();
        let result = Simulator::new().run(&qc, 10_000, 1234);
        // Every outcome probability should be close to 1/1024 ≈ 0.001; check
        // that no outcome is wildly over-represented.
        let max = result.counts.values().max().copied().unwrap_or(0) as f64 / 10_000.0;
        assert!(max < 0.01, "max outcome probability {max}");
        assert_eq!(result.counts.values().sum::<u64>(), 10_000);
    }

    #[test]
    fn partial_measurement_word_length() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::X(2)]);
        qc.measure(&[2, 0]);
        let result = Simulator::new().run(&qc, 10, 3);
        assert_eq!(result.most_frequent(), Some(("10", 10)));
    }

    #[test]
    fn scratch_pool_allocates_once_per_batch() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2), Gate::Cx(2, 3)]);
        qc.measure_all();
        let sim = Simulator::new();
        let mut scratch = SimScratch::new();
        let baseline = sim.run(&qc, 256, 5);
        for seed in 0..16u64 {
            let got = sim
                .run_view_with_scratch(&qc, 256, seed, &mut scratch)
                .unwrap();
            if seed == 5 {
                assert_eq!(got, baseline, "scratch path must match the plain path");
            }
        }
        assert_eq!(
            scratch.amp_allocations(),
            1,
            "a 16-member batch of same-width circuits should allocate amplitudes once"
        );
    }

    #[test]
    fn overlay_view_matches_clone_bound_execution() {
        use crate::overlay::BoundCircuit;
        use crate::param::ParamExpr;
        use std::sync::Arc;

        let mut qc = Circuit::new(3);
        qc.extend(&[
            Gate::H(0),
            Gate::Rzz(0, 1, ParamExpr::symbol(0).scale(2.0)),
            Gate::Rx(2, ParamExpr::symbol(1)),
        ]);
        qc.measure_all();
        let base = Arc::new(qc);
        let sites = base.symbolic_gate_indices();
        let values = [0.7, -1.3];

        let cloned = base.bind_sites(&sites, &values);
        let overlay = BoundCircuit::bind_sites(Arc::clone(&base), &sites, &values);

        let sim = Simulator::new();
        let via_clone = sim.run(&cloned, 2048, 42);
        let via_overlay = sim.try_run_view(&overlay, 2048, 42).unwrap();
        assert_eq!(via_clone, via_overlay);
    }

    #[test]
    fn statevector_access_without_measurement() {
        let mut qc = Circuit::new(2);
        qc.push(Gate::H(0));
        let sv = Simulator::new().statevector(&qc);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }
}
