//! Minimal complex arithmetic for state-vector simulation.
//!
//! The workspace deliberately avoids an external complex-number dependency:
//! the simulator only needs addition, multiplication, conjugation, and norm —
//! implemented here as a `Copy` struct of two `f64`s so gate kernels stay
//! allocation-free and auto-vectorizable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity 0.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity 1.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit i.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// e^{iθ} = cos θ + i sin θ.
    pub fn from_phase(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude |z|².
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Approximate equality within `eps` on both components.
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!((z - z), Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_and_conjugate() {
        let z = Complex64::new(1.0, 2.0);
        let w = Complex64::new(3.0, -1.0);
        let p = z * w;
        assert!(p.approx_eq(Complex64::new(5.0, 5.0), EPS));
        assert!((z * z.conj()).approx_eq(Complex64::real(z.norm_sqr()), EPS));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        let p = Complex64::from_phase(std::f64::consts::FRAC_PI_2);
        assert!(p.approx_eq(Complex64::I, EPS));
        assert!((p.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(-Complex64::ONE, EPS));
    }

    #[test]
    fn phase_multiplication_adds_angles() {
        let a = Complex64::from_phase(0.7);
        let b = Complex64::from_phase(1.1);
        assert!((a * b).approx_eq(Complex64::from_phase(1.8), 1e-10));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(
            format!("{}", Complex64::new(1.0, -2.0)),
            "1.000000-2.000000i"
        );
        assert_eq!(
            format!("{}", Complex64::new(0.0, 1.0)),
            "0.000000+1.000000i"
        );
    }

    #[test]
    fn scale_and_mul_f64_agree() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z.scale(0.5), z * 0.5);
    }
}
