//! Symbolic rotation angles: the parameter expressions carried by the gate IR.
//!
//! The middle layer's late-binding rule (paper §3) means a circuit may be
//! lowered and transpiled while its rotation angles are still symbolic (the
//! QAOA γ/β of a variational sweep). [`ParamExpr`] is the angle type of every
//! rotation gate: either a fully bound constant or an **affine combination**
//! of symbol slots, `offset + Σ coeffᵢ·sym(slotᵢ)` — the closure of what the
//! transpiler's rewrites (negation, scaling, shifting, summing) can produce
//! from `Const` and `Sym` leaves. Keeping the representation affine and
//! inline (a fixed-size term array) keeps [`Gate`](crate::Gate) `Copy`, so
//! symbolic circuits move through routing and optimization exactly like
//! concrete ones.
//!
//! Symbol *slots* are small integers assigned by whoever lowers a program
//! (the backend keeps the slot → name table); the simulator itself never
//! interprets them — it only requires that every expression is bound to a
//! constant before a matrix is requested.

use serde::de::Error as _;
use serde::value::Value;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// Maximum number of distinct symbol slots one affine expression can carry.
///
/// Rotation merging respects this bound: a merge that would exceed it is
/// simply declined (both gates are kept), so the cap never changes semantics.
/// Two terms cover every merge the built-in realization rules can produce
/// (adjacent layers contribute at most one symbol each) while keeping
/// `ParamExpr` — and therefore every `Gate` — small enough to copy freely.
pub const MAX_PARAM_TERMS: usize = 2;

/// Sentinel slot marking an unused term entry.
const NO_SYM: u32 = u32::MAX;

/// A rotation angle: a constant, or an affine combination of symbol slots.
///
/// Invariants (maintained by every constructor and operation):
/// * active terms are sorted by slot, have non-zero coefficients, and are
///   packed at the front of the term array;
/// * unused entries are `(NO_SYM, 0.0)` — so derived equality is structural
///   equality of the canonical form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamExpr {
    offset: f64,
    terms: [(u32, f64); MAX_PARAM_TERMS],
}

impl ParamExpr {
    /// A fully bound constant angle.
    pub fn constant(value: f64) -> Self {
        ParamExpr {
            offset: value,
            terms: [(NO_SYM, 0.0); MAX_PARAM_TERMS],
        }
    }

    /// The bare symbol `sym(slot)` (coefficient 1, offset 0).
    pub fn symbol(slot: u32) -> Self {
        assert_ne!(slot, NO_SYM, "symbol slot {NO_SYM} is reserved");
        let mut terms = [(NO_SYM, 0.0); MAX_PARAM_TERMS];
        terms[0] = (slot, 1.0);
        ParamExpr { offset: 0.0, terms }
    }

    /// Number of active symbol terms.
    fn num_terms(&self) -> usize {
        self.terms.iter().take_while(|(s, _)| *s != NO_SYM).count()
    }

    /// True if the expression references at least one symbol.
    pub fn is_symbolic(&self) -> bool {
        self.terms[0].0 != NO_SYM
    }

    /// The constant value, or `None` while any symbol is unbound.
    pub fn const_value(&self) -> Option<f64> {
        if self.is_symbolic() {
            None
        } else {
            Some(self.offset)
        }
    }

    /// The bound value of the angle.
    ///
    /// # Panics
    /// Panics if the expression still carries unbound symbols — reaching a
    /// simulator kernel with a symbolic angle is a pipeline bug (the backend
    /// must bind the plan's slot table first).
    pub fn value(&self) -> f64 {
        self.const_value()
            .expect("rotation angle still carries unbound symbolic parameters")
    }

    /// Active `(slot, coefficient)` terms.
    pub fn terms(&self) -> &[(u32, f64)] {
        &self.terms[..self.num_terms()]
    }

    /// Slots of every unbound symbol referenced by the expression.
    pub fn slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.terms().iter().map(|&(s, _)| s)
    }

    /// Evaluate against a slot-indexed value table.
    ///
    /// # Panics
    /// Panics if a referenced slot is outside `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = self.offset;
        for &(slot, coeff) in self.terms() {
            let v = *values
                .get(slot as usize)
                .unwrap_or_else(|| panic!("no binding for symbol slot {slot}"));
            acc += coeff * v;
        }
        acc
    }

    /// Substitute the slot table, producing a constant expression.
    pub fn bind(&self, values: &[f64]) -> ParamExpr {
        if self.is_symbolic() {
            ParamExpr::constant(self.eval(values))
        } else {
            *self
        }
    }

    /// The negated expression (`-e`). Exact for both constants and symbols.
    pub fn neg(&self) -> ParamExpr {
        self.scale(-1.0)
    }

    /// The scaled expression (`k·e`). Exact on the affine form.
    pub fn scale(&self, k: f64) -> ParamExpr {
        let mut out = ParamExpr::constant(self.offset * k);
        let mut n = 0usize;
        for &(slot, coeff) in self.terms() {
            let c = coeff * k;
            if c != 0.0 {
                out.terms[n] = (slot, c);
                n += 1;
            }
        }
        out
    }

    /// The shifted expression (`e + d`).
    pub fn shift(&self, d: f64) -> ParamExpr {
        let mut out = *self;
        out.offset += d;
        out
    }

    /// Affine sum `self + other`, or `None` when the result would carry more
    /// than [`MAX_PARAM_TERMS`] distinct symbols (the caller then keeps the
    /// operands separate instead of merging).
    pub fn try_add(&self, other: &ParamExpr) -> Option<ParamExpr> {
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(MAX_PARAM_TERMS * 2);
        let (a, b) = (self.terms(), other.terms());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let take_a = j >= b.len() || (i < a.len() && a[i].0 <= b[j].0);
            let take_b = i >= a.len() || (j < b.len() && b[j].0 <= a[i].0);
            if take_a && take_b {
                let c = a[i].1 + b[j].1;
                if c != 0.0 {
                    merged.push((a[i].0, c));
                }
                i += 1;
                j += 1;
            } else if take_a {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        if merged.len() > MAX_PARAM_TERMS {
            return None;
        }
        let mut out = ParamExpr::constant(self.offset + other.offset);
        for (n, term) in merged.into_iter().enumerate() {
            out.terms[n] = term;
        }
        Some(out)
    }
}

impl From<f64> for ParamExpr {
    fn from(value: f64) -> Self {
        ParamExpr::constant(value)
    }
}

impl fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.const_value() {
            return write!(f, "{v}");
        }
        let mut first = true;
        if self.offset != 0.0 {
            write!(f, "{}", self.offset)?;
            first = false;
        }
        for &(slot, coeff) in self.terms() {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            if coeff == 1.0 {
                write!(f, "θ{slot}")?;
            } else {
                write!(f, "{coeff}·θ{slot}")?;
            }
        }
        Ok(())
    }
}

// A constant serializes as a bare number (so fully bound circuits keep the
// pre-symbolic JSON shape); a symbolic expression serializes as
// `{"offset": o, "terms": [[slot, coeff], ...]}`.
impl Serialize for ParamExpr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let value = match self.const_value() {
            Some(v) => Value::F64(v),
            None => Value::Object(vec![
                ("offset".to_string(), Value::F64(self.offset)),
                (
                    "terms".to_string(),
                    Value::Array(
                        self.terms()
                            .iter()
                            .map(|&(slot, coeff)| {
                                Value::Array(vec![Value::U64(u64::from(slot)), Value::F64(coeff)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        serializer.serialize_value(value)
    }
}

impl<'de> Deserialize<'de> for ParamExpr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        if let Some(v) = value.as_f64() {
            return Ok(ParamExpr::constant(v));
        }
        let offset = value["offset"]
            .as_f64()
            .ok_or_else(|| D::Error::custom("ParamExpr object needs a numeric `offset`"))?;
        let terms = match &value["terms"] {
            Value::Array(items) => items,
            other => {
                return Err(D::Error::custom(format!(
                    "ParamExpr `terms` must be an array, found {}",
                    other.kind()
                )))
            }
        };
        if terms.len() > MAX_PARAM_TERMS {
            return Err(D::Error::custom(format!(
                "ParamExpr carries {} terms (max {MAX_PARAM_TERMS})",
                terms.len()
            )));
        }
        let mut out = ParamExpr::constant(offset);
        let mut n = 0usize;
        let mut last_slot: Option<u32> = None;
        for item in terms {
            let pair = match item {
                Value::Array(pair) if pair.len() == 2 => pair,
                _ => return Err(D::Error::custom("ParamExpr term must be [slot, coeff]")),
            };
            let slot = pair[0]
                .as_u64()
                .and_then(|s| u32::try_from(s).ok())
                .filter(|&s| s != NO_SYM)
                .ok_or_else(|| D::Error::custom("bad ParamExpr symbol slot"))?;
            let coeff = pair[1]
                .as_f64()
                .ok_or_else(|| D::Error::custom("bad ParamExpr coefficient"))?;
            if last_slot.is_some_and(|prev| prev >= slot) {
                return Err(D::Error::custom("ParamExpr terms must be sorted by slot"));
            }
            last_slot = Some(slot);
            if coeff != 0.0 {
                out.terms[n] = (slot, coeff);
                n += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        let c = ParamExpr::constant(0.75);
        assert!(!c.is_symbolic());
        assert_eq!(c.const_value(), Some(0.75));
        assert_eq!(c.value(), 0.75);
        assert_eq!(c.eval(&[]), 0.75);
        assert_eq!(ParamExpr::from(0.75), c);
    }

    #[test]
    fn symbols_evaluate_against_slot_table() {
        let e = ParamExpr::symbol(1).scale(2.0).shift(0.5);
        assert!(e.is_symbolic());
        assert_eq!(e.const_value(), None);
        assert!((e.eval(&[9.0, 0.25]) - 1.0).abs() < 1e-15);
        assert_eq!(e.bind(&[9.0, 0.25]).const_value(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "unbound symbolic parameters")]
    fn value_of_symbolic_panics() {
        ParamExpr::symbol(0).value();
    }

    #[test]
    fn addition_merges_and_cancels() {
        let a = ParamExpr::symbol(0);
        let b = ParamExpr::symbol(1).scale(3.0);
        let sum = a.try_add(&b).unwrap();
        assert_eq!(sum.terms(), &[(0, 1.0), (1, 3.0)]);

        // s − s cancels to a pure constant.
        let cancelled = a.shift(0.25).try_add(&a.neg()).unwrap();
        assert_eq!(cancelled.const_value(), Some(0.25));
    }

    #[test]
    fn addition_respects_term_capacity() {
        let mut acc = ParamExpr::symbol(0);
        for slot in 1..MAX_PARAM_TERMS as u32 {
            acc = acc.try_add(&ParamExpr::symbol(slot)).unwrap();
        }
        assert_eq!(acc.terms().len(), MAX_PARAM_TERMS);
        assert!(acc
            .try_add(&ParamExpr::symbol(MAX_PARAM_TERMS as u32))
            .is_none());
        // Adding a constant or an existing slot still fits.
        assert!(acc.try_add(&ParamExpr::constant(1.0)).is_some());
        assert!(acc.try_add(&ParamExpr::symbol(0)).is_some());
    }

    #[test]
    fn scale_by_zero_is_constant_zero() {
        let e = ParamExpr::symbol(2).shift(4.0).scale(0.0);
        assert_eq!(e.const_value(), Some(0.0));
    }

    #[test]
    fn neg_round_trips() {
        let e = ParamExpr::symbol(3).scale(2.0).shift(-1.0);
        let back = e.neg().neg();
        assert_eq!(back, e);
    }

    #[test]
    fn serde_const_is_bare_number() {
        let json = serde_json::to_string(&ParamExpr::constant(0.5)).unwrap();
        assert_eq!(json, "0.5");
        let back: ParamExpr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ParamExpr::constant(0.5));
    }

    #[test]
    fn serde_symbolic_round_trips() {
        let e = ParamExpr::symbol(0)
            .scale(2.0)
            .try_add(&ParamExpr::symbol(7))
            .unwrap()
            .shift(1.5);
        let json = serde_json::to_string(&e).unwrap();
        let back: ParamExpr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert!(json.contains("terms"));
    }

    #[test]
    fn display_shapes() {
        assert_eq!(ParamExpr::constant(2.0).to_string(), "2");
        assert_eq!(ParamExpr::symbol(3).to_string(), "θ3");
        assert_eq!(ParamExpr::symbol(1).scale(2.0).to_string(), "2·θ1");
    }
}
