//! # qml-sim — a dense state-vector quantum circuit simulator
//!
//! This crate is the repository's substitute for the IBM Qiskit **Aer**
//! state-vector simulator used by the paper's gate path (§5): an ideal,
//! noise-free simulator with exact amplitudes, explicit measurement maps, and
//! seeded multinomial shot sampling.
//!
//! * [`Complex64`] — allocation-free complex arithmetic.
//! * [`Gate`] — the gate vocabulary backends lower descriptors into,
//!   including the paper's `{sx, rz, cx}` hardware basis. Rotation angles
//!   are [`ParamExpr`]s, so circuits may stay symbolic through transpilation
//!   and be bound per execution ([`Circuit::bind`]).
//! * [`StateVector`] — amplitudes plus gate-application kernels
//!   (rayon-parallel above [`state::PARALLEL_THRESHOLD`]).
//! * [`Circuit`] / [`qft_circuit`] — ordered gate lists with explicit
//!   measurement maps and the textbook QFT construction.
//! * [`BoundCircuit`] — zero-copy parameter binding: a shared plan circuit
//!   plus a per-job overlay of bound sites, executed through [`CircuitView`]
//!   without materializing a copied circuit.
//! * [`Simulator`] — `run(circuit, shots, seed)` with reproducible counts;
//!   the batch hot path reuses per-worker [`SimScratch`] buffers via
//!   [`with_thread_scratch`].

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod circuit;
pub mod complex;
pub mod gate;
pub mod overlay;
pub mod param;
pub mod simulator;
pub mod state;

pub use circuit::{circuit_clone_count, qft_circuit, Circuit, CircuitView};
pub use complex::Complex64;
pub use gate::{is_unitary2, matmul2, Gate};
pub use overlay::BoundCircuit;
pub use param::{ParamExpr, MAX_PARAM_TERMS};
pub use simulator::{with_thread_scratch, SimScratch, SimulationResult, Simulator};
pub use state::{DegenerateStateError, StateVector, PARALLEL_THRESHOLD};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
        let q = 0..n;
        let q2 = 0..n;
        let theta = -6.3f64..6.3;
        (q, q2, theta, 0u8..8).prop_map(move |(a, b, t, kind)| {
            let b = if a == b { (b + 1) % n } else { b };
            match kind {
                0 => Gate::H(a),
                1 => Gate::Rx(a, t.into()),
                2 => Gate::Ry(a, t.into()),
                3 => Gate::Rz(a, t.into()),
                4 => Gate::Cx(a, b),
                5 => Gate::Cp(a, b, t.into()),
                6 => Gate::Rzz(a, b, t.into()),
                _ => Gate::Sx(a),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every random circuit preserves the state norm.
        #[test]
        fn random_circuits_preserve_norm(gates in proptest::collection::vec(arb_gate(4), 1..40)) {
            let mut sv = StateVector::zero_state(4);
            sv.apply_all(&gates);
            prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-8);
        }

        /// Applying a circuit followed by its inverse returns to |0...0⟩.
        #[test]
        fn circuit_inverse_round_trip(gates in proptest::collection::vec(arb_gate(4), 1..25)) {
            let mut qc = Circuit::new(4);
            qc.extend(&gates);
            let mut sv = StateVector::zero_state(4);
            sv.apply_all(qc.gates());
            sv.apply_all(qc.inverse().gates());
            prop_assert!((sv.probability(0) - 1.0).abs() < 1e-8);
        }

        /// Shot counts always sum to the requested number of shots and only
        /// contain words of the right width.
        #[test]
        fn sampling_totals(gates in proptest::collection::vec(arb_gate(3), 1..15), shots in 1u64..500, seed in 0u64..100) {
            let mut qc = Circuit::new(3);
            qc.extend(&gates);
            qc.measure_all();
            let result = Simulator::new().run(&qc, shots, seed);
            prop_assert_eq!(result.counts.values().sum::<u64>(), shots);
            prop_assert!(result.counts.keys().all(|w| w.len() == 3));
        }
    }
}
