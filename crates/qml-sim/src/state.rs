//! Dense state vector and gate-application kernels.
//!
//! The state of `n` qubits is a vector of 2ⁿ complex amplitudes. Basis index
//! bit `q` is the state of qubit `q` (little-endian, matching the middle
//! layer's `LSB_0` convention). Kernels switch to rayon data-parallel
//! execution once the state exceeds [`PARALLEL_THRESHOLD`] amplitudes — the
//! per-gate maps are pure, so parallel and serial execution are bit-identical.

use rand::Rng;
use rayon::prelude::*;

use crate::circuit::CircuitView;
use crate::complex::Complex64;
use crate::gate::Gate;

/// Number of amplitudes above which kernels use rayon.
pub const PARALLEL_THRESHOLD: usize = 1 << 14;

/// Error returned by shot sampling when the state's probability mass is
/// degenerate: all-zero amplitudes or a non-finite norm (e.g. a rotation
/// bound to a NaN angle). Such a state has no multinomial interpretation —
/// the old sampler either panicked inside `partial_cmp` (NaN) or silently
/// returned basis state 0 for every shot (zero mass), so the condition is
/// now reported as a value.
#[derive(Debug, Clone, PartialEq)]
pub struct DegenerateStateError {
    /// The total probability mass the sampler observed (0.0, NaN, or ±∞).
    pub total_mass: f64,
}

impl std::fmt::Display for DegenerateStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot sample a degenerate state (total probability mass {})",
            self.total_mass
        )
    }
}

impl std::error::Error for DegenerateStateError {}

/// A dense state vector over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0...0⟩.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 26,
            "state vector limited to 26 qubits (1 GiB)"
        );
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Like [`StateVector::zero_state`], but reuses `buf`'s allocation for
    /// the amplitudes — the scratch-pool constructor the batch execute path
    /// uses so same-width micro-batch members share one buffer (recover the
    /// buffer afterwards with [`StateVector::into_amps`]).
    pub fn zero_state_in(num_qubits: usize, mut buf: Vec<Complex64>) -> Self {
        assert!(
            num_qubits <= 26,
            "state vector limited to 26 qubits (1 GiB)"
        );
        buf.clear();
        buf.resize(1 << num_qubits, Complex64::ZERO);
        buf[0] = Complex64::ONE;
        StateVector {
            num_qubits,
            amps: buf,
        }
    }

    /// Consume the state, returning its amplitude buffer for reuse.
    pub fn into_amps(self) -> Vec<Complex64> {
        self.amps
    }

    /// The computational basis state |index⟩.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        assert!(index < (1 << num_qubits), "basis index out of range");
        let mut sv = StateVector::zero_state(num_qubits);
        sv.amps[0] = Complex64::ZERO;
        sv.amps[index] = Complex64::ONE;
        sv
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (2ⁿ).
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitude of basis state |index⟩.
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Squared norm (should always be ≈ 1).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Probability of measuring basis state |index⟩.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Inner product ⟨self|other⟩.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(Complex64::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity |⟨self|other⟩|².
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// ⟨Z_q⟩ expectation value of qubit `q`.
    pub fn expectation_z(&self, q: usize) -> f64 {
        assert!(q < self.num_qubits);
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let p = a.norm_sqr();
                if i & mask == 0 {
                    p
                } else {
                    -p
                }
            })
            .sum()
    }

    /// ⟨Z_a Z_b⟩ two-point correlator.
    pub fn expectation_zz(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.num_qubits && b < self.num_qubits);
        let (ma, mb) = (1usize << a, 1usize << b);
        self.amps
            .iter()
            .enumerate()
            .map(|(i, amp)| {
                let sign = if ((i & ma != 0) as u8) ^ ((i & mb != 0) as u8) == 0 {
                    1.0
                } else {
                    -1.0
                };
                sign * amp.norm_sqr()
            })
            .sum()
    }

    /// Apply a gate in place.
    pub fn apply(&mut self, gate: &Gate) {
        for &q in &gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {} on qubit {q} out of range",
                gate.name()
            );
        }
        match *gate {
            Gate::Cx(c, t) => self.apply_cx(c, t),
            Gate::Cz(c, t) => self.apply_cphase(c, t, std::f64::consts::PI),
            Gate::Cp(c, t, lambda) => self.apply_cphase(c, t, lambda.value()),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            Gate::Rzz(a, b, theta) => self.apply_rzz(a, b, theta.value()),
            ref g => {
                let m = g
                    .single_qubit_matrix()
                    .expect("single-qubit gate must provide a matrix");
                self.apply_single_qubit(g.qubits()[0], &m);
            }
        }
    }

    /// Apply every gate of a slice in order.
    pub fn apply_all(&mut self, gates: &[Gate]) {
        for gate in gates {
            self.apply(gate);
        }
    }

    /// Apply every effective gate of a [`CircuitView`] in order — the
    /// overlay-aware application path: a [`crate::overlay::BoundCircuit`]
    /// substitutes its bound gates during the walk, without a copied circuit.
    pub fn apply_view<C: CircuitView + ?Sized>(&mut self, view: &C) {
        view.for_each_gate(&mut |gate| self.apply(gate));
    }

    /// Apply an arbitrary 2×2 unitary to qubit `q`.
    pub fn apply_single_qubit(&mut self, q: usize, m: &[Complex64; 4]) {
        let stride = 1usize << q;
        let block = stride << 1;
        let m = *m;
        let kernel = |chunk: &mut [Complex64]| {
            for i in 0..stride {
                let a = chunk[i];
                let b = chunk[i + stride];
                chunk[i] = m[0] * a + m[1] * b;
                chunk[i + stride] = m[2] * a + m[3] * b;
            }
        };
        if self.amps.len() >= PARALLEL_THRESHOLD && self.amps.len() / block > 1 {
            self.amps.par_chunks_mut(block).for_each(kernel);
        } else {
            self.amps.chunks_mut(block).for_each(kernel);
        }
    }

    /// Controlled-X: flip the target bit where the control bit is 1.
    fn apply_cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let dim = self.amps.len();
        // Swap pairs (i, i^tmask) where control=1 and target=0 in i.
        let indices: Vec<usize> = if dim >= PARALLEL_THRESHOLD {
            (0..dim)
                .into_par_iter()
                .filter(|i| i & cmask != 0 && i & tmask == 0)
                .collect()
        } else {
            (0..dim)
                .filter(|i| i & cmask != 0 && i & tmask == 0)
                .collect()
        };
        for i in indices {
            self.amps.swap(i, i | tmask);
        }
    }

    /// Controlled phase: multiply amplitudes with both bits set by e^{iλ}.
    fn apply_cphase(&mut self, control: usize, target: usize, lambda: f64) {
        assert_ne!(control, target, "control and target must differ");
        let mask = (1usize << control) | (1usize << target);
        let phase = Complex64::from_phase(lambda);
        let kernel = |(i, amp): (usize, &mut Complex64)| {
            if i & mask == mask {
                *amp = *amp * phase;
            }
        };
        if self.amps.len() >= PARALLEL_THRESHOLD {
            self.amps.par_iter_mut().enumerate().for_each(kernel);
        } else {
            self.amps.iter_mut().enumerate().for_each(kernel);
        }
    }

    /// SWAP two qubits.
    fn apply_swap(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "swap qubits must differ");
        let (ma, mb) = (1usize << a, 1usize << b);
        let dim = self.amps.len();
        let indices: Vec<usize> = (0..dim).filter(|i| i & ma != 0 && i & mb == 0).collect();
        for i in indices {
            let j = (i & !ma) | mb;
            self.amps.swap(i, j);
        }
    }

    /// exp(-i θ/2 Z⊗Z): diagonal phase e^{∓iθ/2} depending on parity.
    fn apply_rzz(&mut self, a: usize, b: usize, theta: f64) {
        assert_ne!(a, b, "rzz qubits must differ");
        let (ma, mb) = (1usize << a, 1usize << b);
        let even = Complex64::from_phase(-theta / 2.0);
        let odd = Complex64::from_phase(theta / 2.0);
        let kernel = |(i, amp): (usize, &mut Complex64)| {
            let parity = ((i & ma != 0) as u8) ^ ((i & mb != 0) as u8);
            *amp = *amp * if parity == 0 { even } else { odd };
        };
        if self.amps.len() >= PARALLEL_THRESHOLD {
            self.amps.par_iter_mut().enumerate().for_each(kernel);
        } else {
            self.amps.iter_mut().enumerate().for_each(kernel);
        }
    }

    /// Sample `shots` measurement outcomes of the listed qubits in the Z
    /// basis. Returns bitstrings where character `j` is the outcome of
    /// `qubits[j]`, or a [`DegenerateStateError`] when the state carries no
    /// finite positive probability mass.
    ///
    /// Convenience wrapper over [`StateVector::sample_counts_with`] that
    /// allocates its own scratch buffers.
    pub fn sample_counts<R: Rng>(
        &self,
        qubits: &[usize],
        shots: u64,
        rng: &mut R,
    ) -> Result<std::collections::BTreeMap<String, u64>, DegenerateStateError> {
        self.sample_counts_with(qubits, shots, rng, &mut Vec::new(), &mut Vec::new())
    }

    /// Vectorized shot sampling into caller-provided scratch buffers.
    ///
    /// The CDF over full basis states is computed **once** into `cdf`, all
    /// `shots` draws are taken up front into `draws` (one `rng` call per
    /// shot, exactly like the scalar sampler consumed the stream), sorted,
    /// and resolved by a single merge walk over the CDF — O(2ⁿ + S log S)
    /// instead of a per-shot binary search's O(S log 2ⁿ). Counts accumulate
    /// per basis-state *run*, so a bitstring key is rendered once per
    /// distinct outcome, not once per shot.
    ///
    /// A draw resolves to the first basis state whose cumulative mass
    /// strictly exceeds it (clamped to the last positive-probability state),
    /// so zero-probability plateaus can never be sampled.
    pub fn sample_counts_with<R: Rng>(
        &self,
        qubits: &[usize],
        shots: u64,
        rng: &mut R,
        cdf: &mut Vec<f64>,
        draws: &mut Vec<f64>,
    ) -> Result<std::collections::BTreeMap<String, u64>, DegenerateStateError> {
        for &q in qubits {
            assert!(q < self.num_qubits, "measured qubit {q} out of range");
        }
        // Cumulative distribution over full basis states, reusing `cdf`.
        cdf.clear();
        cdf.reserve(self.amps.len());
        let mut acc = 0.0f64;
        let mut last_positive = 0usize;
        for (i, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p > 0.0 {
                last_positive = i;
            }
            acc += p;
            cdf.push(acc);
        }
        let total = acc;
        if !total.is_finite() || total <= 0.0 {
            return Err(DegenerateStateError { total_mass: total });
        }

        draws.clear();
        draws.reserve(shots as usize);
        for _ in 0..shots {
            draws.push(rng.gen::<f64>() * total);
        }
        draws.sort_unstable_by(f64::total_cmp);

        let render = |idx: usize| -> String {
            qubits
                .iter()
                .map(|&q| if idx & (1 << q) != 0 { '1' } else { '0' })
                .collect()
        };
        let mut counts = std::collections::BTreeMap::new();
        let mut idx = 0usize;
        let mut run: Option<(usize, u64)> = None;
        for &r in draws.iter() {
            // Ascending draws ⇒ the walk pointer only moves forward; the
            // whole loop advances it at most 2ⁿ positions in total.
            while idx < last_positive && cdf[idx] <= r {
                idx += 1;
            }
            match run {
                Some((current, ref mut n)) if current == idx => *n += 1,
                _ => {
                    if let Some((current, n)) = run {
                        *counts.entry(render(current)).or_insert(0u64) += n;
                    }
                    run = Some((idx, 1));
                }
            }
        }
        if let Some((current, n)) = run {
            // Distinct basis states can share a word when `qubits` is a
            // subset, so runs merge through the map entry.
            *counts.entry(render(current)).or_insert(0u64) += n;
        }
        Ok(counts)
    }

    /// Exact outcome distribution of the listed qubits (marginalized over the
    /// rest), keyed by the same bitstring convention as [`StateVector::sample_counts`].
    pub fn marginal_probabilities(
        &self,
        qubits: &[usize],
    ) -> std::collections::BTreeMap<String, f64> {
        let mut out = std::collections::BTreeMap::new();
        for (idx, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p == 0.0 {
                continue;
            }
            let word: String = qubits
                .iter()
                .map(|&q| if idx & (1 << q) != 0 { '1' } else { '0' })
                .collect();
            *out.entry(word).or_insert(0.0) += p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_state_is_normalized() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.dim(), 8);
        assert!((sv.norm_sqr() - 1.0).abs() < EPS);
        assert!((sv.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut sv = StateVector::zero_state(1);
        sv.apply(&Gate::H(0));
        assert!((sv.amplitude(0).re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((sv.amplitude(1).re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((sv.expectation_z(0)).abs() < EPS);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::X(1));
        assert!((sv.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_state_preparation() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_all(&[Gate::H(0), Gate::Cx(0, 1)]);
        assert!((sv.probability(0b00) - 0.5).abs() < EPS);
        assert!((sv.probability(0b11) - 0.5).abs() < EPS);
        assert!(sv.probability(0b01) < EPS);
        assert!(sv.probability(0b10) < EPS);
        assert!((sv.expectation_zz(0, 1) - 1.0).abs() < EPS);
        assert!(sv.expectation_z(0).abs() < EPS);
    }

    #[test]
    fn cx_control_and_target_order_matter() {
        // |01⟩ (qubit 0 = 1): CX(0→1) flips qubit 1, CX(1→0) does nothing.
        let mut a = StateVector::basis_state(2, 0b01);
        a.apply(&Gate::Cx(0, 1));
        assert!((a.probability(0b11) - 1.0).abs() < EPS);

        let mut b = StateVector::basis_state(2, 0b01);
        b.apply(&Gate::Cx(1, 0));
        assert!((b.probability(0b01) - 1.0).abs() < EPS);
    }

    #[test]
    fn cz_and_cp_pi_agree() {
        let mut a = StateVector::zero_state(2);
        a.apply_all(&[Gate::H(0), Gate::H(1), Gate::Cz(0, 1)]);
        let mut b = StateVector::zero_state(2);
        b.apply_all(&[Gate::H(0), Gate::H(1), Gate::Cp(0, 1, PI.into())]);
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut sv = StateVector::basis_state(3, 0b001);
        sv.apply(&Gate::Swap(0, 2));
        assert!((sv.probability(0b100) - 1.0).abs() < EPS);
        // Swapping twice restores the original.
        sv.apply(&Gate::Swap(0, 2));
        assert!((sv.probability(0b001) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_equals_three_cx() {
        let mut direct = StateVector::zero_state(2);
        direct.apply_all(&[Gate::H(0), Gate::T(1), Gate::Swap(0, 1)]);
        let mut via_cx = StateVector::zero_state(2);
        via_cx.apply_all(&[
            Gate::H(0),
            Gate::T(1),
            Gate::Cx(0, 1),
            Gate::Cx(1, 0),
            Gate::Cx(0, 1),
        ]);
        assert!((direct.fidelity(&via_cx) - 1.0).abs() < EPS);
    }

    #[test]
    fn rzz_equals_cx_rz_cx() {
        let theta = 0.73;
        let mut direct = StateVector::zero_state(2);
        direct.apply_all(&[Gate::H(0), Gate::H(1), Gate::Rzz(0, 1, theta.into())]);
        let mut decomposed = StateVector::zero_state(2);
        decomposed.apply_all(&[
            Gate::H(0),
            Gate::H(1),
            Gate::Cx(0, 1),
            Gate::Rz(1, theta.into()),
            Gate::Cx(0, 1),
        ]);
        assert!((direct.fidelity(&decomposed) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut sv = StateVector::zero_state(5);
        let gates = [
            Gate::H(0),
            Gate::Rx(1, (0.3).into()),
            Gate::Cx(0, 2),
            Gate::Rz(3, (1.1).into()),
            Gate::Cp(2, 4, (0.4).into()),
            Gate::Ry(4, (-0.8).into()),
            Gate::Rzz(1, 3, (0.9).into()),
            Gate::Swap(0, 4),
            Gate::Sx(2),
            Gate::T(3),
        ];
        sv.apply_all(&gates);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectation_z_on_basis_states() {
        let sv = StateVector::basis_state(2, 0b01);
        assert!((sv.expectation_z(0) + 1.0).abs() < EPS);
        assert!((sv.expectation_z(1) - 1.0).abs() < EPS);
        assert!((sv.expectation_zz(0, 1) + 1.0).abs() < EPS);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_all(&[Gate::H(0), Gate::Cx(0, 1)]);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = sv.sample_counts(&[0, 1], 10_000, &mut rng).unwrap();
        // Only 00 and 11 occur, each ≈ 50 %.
        assert_eq!(counts.keys().cloned().collect::<Vec<_>>(), vec!["00", "11"]);
        let p00 = counts["00"] as f64 / 10_000.0;
        assert!((p00 - 0.5).abs() < 0.03, "p00 = {p00}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_all(&[Gate::H(0), Gate::H(1), Gate::H(2)]);
        let a = sv.sample_counts(&[0, 1, 2], 1000, &mut StdRng::seed_from_u64(7));
        let b = sv.sample_counts(&[0, 1, 2], 1000, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn degenerate_nan_state_is_a_sampling_error() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::Rx(0, f64::NAN.into()));
        let err = sv
            .sample_counts(&[0, 1], 100, &mut StdRng::seed_from_u64(1))
            .unwrap_err();
        assert!(
            !err.total_mass.is_finite(),
            "NaN amplitudes must surface as non-finite mass, got {}",
            err.total_mass
        );
        assert!(err.to_string().contains("degenerate"));
    }

    #[test]
    fn vectorized_sampler_reuses_scratch_and_matches_wrapper() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_all(&[Gate::H(0), Gate::Cx(0, 1), Gate::X(2)]);
        let simple = sv
            .sample_counts(&[0, 1, 2], 500, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let mut cdf = Vec::new();
        let mut draws = Vec::new();
        let buffered = sv
            .sample_counts_with(
                &[0, 1, 2],
                500,
                &mut StdRng::seed_from_u64(9),
                &mut cdf,
                &mut draws,
            )
            .unwrap();
        assert_eq!(simple, buffered);
        assert_eq!(cdf.len(), 8);
        assert_eq!(draws.len(), 500);
        // Reusing the same buffers must not change the outcome.
        let again = sv
            .sample_counts_with(
                &[0, 1, 2],
                500,
                &mut StdRng::seed_from_u64(9),
                &mut cdf,
                &mut draws,
            )
            .unwrap();
        assert_eq!(simple, again);
    }

    #[test]
    fn marginal_probabilities_sum_to_one() {
        let mut sv = StateVector::zero_state(3);
        sv.apply_all(&[Gate::H(0), Gate::Cx(0, 1), Gate::Ry(2, (0.7).into())]);
        let marg = sv.marginal_probabilities(&[0, 2]);
        let total: f64 = marg.values().sum();
        assert!((total - 1.0).abs() < EPS);
    }

    #[test]
    fn subset_measurement_word_order() {
        // Qubit 2 is |1⟩, qubits 0,1 are |0⟩; measuring [2, 0] must give "10".
        let sv = StateVector::basis_state(3, 0b100);
        let marg = sv.marginal_probabilities(&[2, 0]);
        assert!((marg["10"] - 1.0).abs() < EPS);
    }

    #[test]
    fn parallel_and_serial_kernels_agree() {
        // 15 qubits crosses PARALLEL_THRESHOLD (2^14); compare against a
        // small-state reference by checking marginals of a product state.
        let n = 15;
        let mut sv = StateVector::zero_state(n);
        for q in 0..n {
            sv.apply(&Gate::Ry(q, (0.1 * (q as f64 + 1.0)).into()));
        }
        sv.apply(&Gate::Cx(0, 14));
        sv.apply(&Gate::Rzz(3, 12, (0.4).into()));
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        // Qubit 7 is untouched by the entangling gates: its marginal must
        // match the single-qubit calculation exactly.
        let expected_p1 = (0.1f64 * 8.0 / 2.0).sin().powi(2);
        let marg = sv.marginal_probabilities(&[7]);
        assert!((marg.get("1").copied().unwrap_or(0.0) - expected_p1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_missing_qubit_panics() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::H(5));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cx_same_qubit_panics() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::Cx(1, 1));
    }
}
