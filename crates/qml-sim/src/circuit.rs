//! Quantum circuits: ordered gate lists with explicit measurement maps.
//!
//! A [`Circuit`] is the realization target the gate backend lowers operator
//! descriptors into and the unit the transpiler rewrites. Measurements are
//! explicit — a circuit with no `measure` entries produces no classical data,
//! honouring the middle layer's "no implicit measurements" rule.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::gate::Gate;

/// Process-wide count of full [`Circuit`] clones (see
/// [`circuit_clone_count`]).
static CIRCUIT_CLONES: AtomicU64 = AtomicU64::new(0);

/// Number of full `Circuit` clones (gate vector + measurement map copies)
/// performed since process start. The per-job execute path is required to be
/// clone-free — cached plans are shared behind `Arc` and bound through a
/// [`crate::overlay::BoundCircuit`] overlay — so regression tests snapshot
/// this counter around warm executions and assert a zero delta. Realization
/// (transpilation) may clone freely.
pub fn circuit_clone_count() -> u64 {
    CIRCUIT_CLONES.load(Ordering::Relaxed)
}

/// An ordered list of gates on `num_qubits` qubits plus an explicit
/// measurement map (qubit → classical bit position).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
    /// Qubits measured at the end of the circuit, in classical-bit order:
    /// `measured[j]` is the qubit whose outcome becomes classical bit `j`.
    measured: Vec<usize>,
}

impl Clone for Circuit {
    /// A deep copy of the gate vector — deliberately *not* derived so every
    /// full-circuit copy passes through the [`circuit_clone_count`] counter.
    fn clone(&self) -> Self {
        CIRCUIT_CLONES.fetch_add(1, Ordering::Relaxed);
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.clone(),
            measured: self.measured.clone(),
        }
    }
}

/// Read-only access to an executable circuit: exactly what the simulator
/// needs to apply gates and sample measurements, abstracted so a shared
/// cached plan plus a per-job binding overlay
/// ([`crate::overlay::BoundCircuit`]) can execute without ever materializing
/// a copied [`Circuit`].
pub trait CircuitView {
    /// Number of qubits.
    fn width(&self) -> usize;
    /// The measurement map (classical bit `j` reads qubit
    /// `measurement_map()[j]`).
    fn measurement_map(&self) -> &[usize];
    /// Number of gates in application order.
    fn gate_count(&self) -> usize;
    /// The effective gate at position `i` in application order.
    fn gate_at(&self, i: usize) -> &Gate;
    /// Visit every effective gate in application order. Implementations with
    /// cheaper sequential access than random [`CircuitView::gate_at`] (e.g.
    /// an overlay's merge walk) override this.
    fn for_each_gate(&self, f: &mut dyn FnMut(&Gate)) {
        for i in 0..self.gate_count() {
            f(self.gate_at(i));
        }
    }
}

impl CircuitView for Circuit {
    fn width(&self) -> usize {
        self.num_qubits
    }

    fn measurement_map(&self) -> &[usize] {
        &self.measured
    }

    fn gate_count(&self) -> usize {
        self.gates.len()
    }

    fn gate_at(&self, i: usize) -> &Gate {
        &self.gates[i]
    }
}

impl Circuit {
    /// An empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            measured: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits produced by the measurement map.
    pub fn num_clbits(&self) -> usize {
        self.measured.len()
    }

    /// The gates in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The measurement map (classical bit `j` reads qubit `measured()[j]`).
    pub fn measured(&self) -> &[usize] {
        &self.measured
    }

    /// Append a gate.
    ///
    /// # Panics
    /// Panics if the gate touches a qubit outside the circuit.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {} on qubit {q} exceeds circuit width {}",
                gate.name(),
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Append every gate of a slice.
    pub fn extend(&mut self, gates: &[Gate]) {
        for &g in gates {
            self.push(g);
        }
    }

    /// Append another circuit's gates (its measurements are ignored).
    pub fn compose(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot compose a wider circuit ({} qubits) into {} qubits",
            other.num_qubits,
            self.num_qubits
        );
        self.extend(&other.gates);
    }

    /// Declare that `qubits` are measured (in the given classical-bit order).
    ///
    /// # Panics
    /// Panics if a qubit is measured twice or is out of range.
    pub fn measure(&mut self, qubits: &[usize]) {
        for &q in qubits {
            assert!(q < self.num_qubits, "measured qubit {q} out of range");
            assert!(
                !self.measured.contains(&q),
                "qubit {q} is already measured (no double measurement)"
            );
            self.measured.push(q);
        }
    }

    /// Measure every qubit in index order.
    pub fn measure_all(&mut self) {
        let all: Vec<usize> = (0..self.num_qubits).collect();
        self.measure(&all);
    }

    /// Total gate count.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit holds no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    pub fn count_two_qubit(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn count_single_qubit(&self) -> usize {
        self.gates.len() - self.count_two_qubit()
    }

    /// Gate counts keyed by gate name (the statistic Qiskit's `count_ops`
    /// reports and the paper's cost hints approximate).
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for g in &self.gates {
            *out.entry(g.name()).or_insert(0) += 1;
        }
        out
    }

    /// Circuit depth: the length of the longest chain of gates sharing
    /// qubits, computed greedily in program order.
    pub fn depth(&self) -> usize {
        let mut per_qubit = vec![0usize; self.num_qubits];
        let mut depth = 0usize;
        for g in &self.gates {
            let level = g.qubits().iter().map(|&q| per_qubit[q]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                per_qubit[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// True if any gate still carries unbound symbolic angles.
    pub fn is_symbolic(&self) -> bool {
        self.gates.iter().any(Gate::is_symbolic)
    }

    /// Indices of the gates carrying unbound symbolic angles — the
    /// substitution sites a cached parametric plan rewrites per binding.
    pub fn symbolic_gate_indices(&self) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_symbolic())
            .map(|(i, _)| i)
            .collect()
    }

    /// Substitute a slot-indexed value table into every symbolic gate,
    /// returning the fully bound circuit. O(gates); no routing or basis work.
    pub fn bind(&self, values: &[f64]) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().map(|g| g.bind(values)).collect(),
            measured: self.measured.clone(),
        }
    }

    /// Replace the gates at the given `(index, gate)` pairs in place — the
    /// overlay materialization helper ([`crate::overlay::BoundCircuit`]).
    pub(crate) fn rewrite_gates(&mut self, overrides: &[(usize, Gate)]) {
        for &(i, g) in overrides {
            self.gates[i] = g;
        }
    }

    /// Like [`Circuit::bind`], but only rewrites the given gate indices
    /// (obtained from [`Circuit::symbolic_gate_indices`]); the remaining
    /// gates are copied verbatim, so the cost is one memcpy + O(#sites).
    pub fn bind_sites(&self, sites: &[usize], values: &[f64]) -> Circuit {
        let mut out = self.clone();
        for &i in sites {
            out.gates[i] = out.gates[i].bind(values);
        }
        out
    }

    /// The inverse circuit: gates reversed and individually inverted.
    /// Measurements are not carried over (the inverse of a measured circuit
    /// is only meaningful up to the measurement).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
            measured: Vec::new(),
        }
    }

    /// Remap every gate and measurement through `map` (old index → new
    /// index) onto a circuit of `new_width` qubits.
    pub fn remap(&self, map: &[usize], new_width: usize) -> Circuit {
        assert_eq!(
            map.len(),
            self.num_qubits,
            "layout map must cover every qubit"
        );
        let mut out = Circuit::new(new_width);
        for g in &self.gates {
            out.push(g.remap(map));
        }
        out.measured = self.measured.iter().map(|&q| map[q]).collect();
        out
    }

    /// Does the circuit only use gates whose names appear in `basis`?
    /// (Measurements are always allowed.)
    pub fn uses_only(&self, basis: &[String]) -> bool {
        self.gates
            .iter()
            .all(|g| basis.iter().any(|b| b == g.name()))
    }
}

/// Build the textbook QFT circuit on qubits `0..n` of a circuit: Hadamards
/// and controlled phases, with optional final wire-reversal swaps and an
/// approximation degree that drops the smallest-angle rotations — the
/// realization of the paper's `QFT_TEMPLATE` descriptor parameters.
pub fn qft_circuit(n: usize, approx_degree: usize, do_swaps: bool, inverse: bool) -> Circuit {
    let mut qc = Circuit::new(n);
    for j in (0..n).rev() {
        qc.push(Gate::H(j));
        for k in (0..j).rev() {
            let distance = j - k;
            // approximation_degree = d drops rotations with distance > n-1-d.
            if approx_degree > 0 && distance > n.saturating_sub(1 + approx_degree) {
                continue;
            }
            let angle = std::f64::consts::PI / (1 << distance) as f64;
            qc.push(Gate::Cp(k, j, angle.into()));
        }
    }
    if do_swaps {
        for i in 0..n / 2 {
            qc.push(Gate::Swap(i, n - 1 - i));
        }
    }
    if inverse {
        qc.inverse()
    } else {
        qc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use std::f64::consts::TAU;

    #[test]
    fn push_and_counts() {
        let mut qc = Circuit::new(3);
        qc.extend(&[
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::Rz(2, (0.4).into()),
            Gate::Cx(1, 2),
        ]);
        assert_eq!(qc.len(), 4);
        assert_eq!(qc.count_two_qubit(), 2);
        assert_eq!(qc.count_single_qubit(), 2);
        assert_eq!(qc.gate_counts()["cx"], 2);
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn depth_of_parallel_layers() {
        let mut qc = Circuit::new(4);
        qc.extend(&[Gate::H(0), Gate::H(1), Gate::H(2), Gate::H(3)]);
        assert_eq!(qc.depth(), 1);
        qc.push(Gate::Cx(0, 1));
        qc.push(Gate::Cx(2, 3));
        assert_eq!(qc.depth(), 2);
        qc.push(Gate::Cx(1, 2));
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn empty_circuit_properties() {
        let qc = Circuit::new(2);
        assert!(qc.is_empty());
        assert_eq!(qc.depth(), 0);
        assert_eq!(qc.num_clbits(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds circuit width")]
    fn gate_out_of_range_panics() {
        Circuit::new(2).push(Gate::H(2));
    }

    #[test]
    #[should_panic(expected = "already measured")]
    fn double_measurement_panics() {
        let mut qc = Circuit::new(2);
        qc.measure(&[0]);
        qc.measure(&[0]);
    }

    #[test]
    fn measure_all_order() {
        let mut qc = Circuit::new(3);
        qc.measure_all();
        assert_eq!(qc.measured(), &[0, 1, 2]);
        assert_eq!(qc.num_clbits(), 3);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut qc = Circuit::new(3);
        qc.extend(&[
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::T(2),
            Gate::Rz(1, (0.9).into()),
            Gate::Cp(0, 2, (0.4).into()),
            Gate::Sx(1),
        ]);
        let mut sv = StateVector::zero_state(3);
        sv.apply_all(qc.gates());
        sv.apply_all(qc.inverse().gates());
        let zero = StateVector::zero_state(3);
        assert!((sv.fidelity(&zero) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remap_moves_gates_and_measurements() {
        let mut qc = Circuit::new(2);
        qc.push(Gate::Cx(0, 1));
        qc.measure(&[0, 1]);
        let remapped = qc.remap(&[3, 1], 4);
        assert_eq!(remapped.gates()[0], Gate::Cx(3, 1));
        assert_eq!(remapped.measured(), &[3, 1]);
        assert_eq!(remapped.num_qubits(), 4);
    }

    #[test]
    fn uses_only_checks_basis() {
        let mut qc = Circuit::new(2);
        qc.extend(&[Gate::Sx(0), Gate::Rz(1, (0.3).into()), Gate::Cx(0, 1)]);
        let basis: Vec<String> = ["sx", "rz", "cx"].iter().map(|s| s.to_string()).collect();
        assert!(qc.uses_only(&basis));
        qc.push(Gate::H(0));
        assert!(!qc.uses_only(&basis));
    }

    #[test]
    fn qft_gate_count_matches_formula() {
        // Exact QFT with swaps: n Hadamards, n(n-1)/2 controlled phases,
        // ⌊n/2⌋ swaps.
        let n = 10;
        let qc = qft_circuit(n, 0, true, false);
        let counts = qc.gate_counts();
        assert_eq!(counts["h"], n);
        assert_eq!(counts["cp"], n * (n - 1) / 2);
        assert_eq!(counts["swap"], n / 2);
    }

    #[test]
    fn approximate_qft_drops_small_rotations() {
        let exact = qft_circuit(8, 0, false, false);
        let approx = qft_circuit(8, 3, false, false);
        assert!(approx.count_two_qubit() < exact.count_two_qubit());
    }

    #[test]
    fn qft_of_basis_state_gives_uniform_magnitudes() {
        let n = 4;
        let qc = qft_circuit(n, 0, true, false);
        let mut sv = StateVector::basis_state(n, 5);
        sv.apply_all(qc.gates());
        let expected = 1.0 / (1 << n) as f64;
        for i in 0..(1 << n) {
            assert!((sv.probability(i) - expected).abs() < 1e-9, "index {i}");
        }
    }

    #[test]
    fn qft_inverse_qft_is_identity() {
        let n = 5;
        let forward = qft_circuit(n, 0, true, false);
        let backward = qft_circuit(n, 0, true, true);
        let mut sv = StateVector::basis_state(n, 19);
        sv.apply_all(forward.gates());
        sv.apply_all(backward.gates());
        assert!((sv.probability(19) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qft_diagonalizes_phase_gradient() {
        // Preparing the phase-gradient state for integer k and applying the
        // inverse QFT must yield |k⟩: the basis of quantum phase estimation.
        let n = 5;
        let dim = 1usize << n;
        let k = 11usize;
        // Build Σ_x e^{2πi k x / 2^n} |x⟩ / √2^n with H + phase gates.
        let mut qc = Circuit::new(n);
        for q in 0..n {
            qc.push(Gate::H(q));
            let angle = TAU * (k as f64) * (1 << q) as f64 / dim as f64;
            qc.push(Gate::Phase(q, angle.into()));
        }
        // The inverse of the no-swap QFT maps it back to |k⟩ bit-reversed;
        // with swaps enabled the result is |k⟩ directly.
        let inv = qft_circuit(n, 0, true, true);
        let mut sv = StateVector::zero_state(n);
        sv.apply_all(qc.gates());
        sv.apply_all(inv.gates());
        assert!(
            (sv.probability(k) - 1.0).abs() < 1e-9,
            "P(|{k}⟩) = {}",
            sv.probability(k)
        );
    }
}
