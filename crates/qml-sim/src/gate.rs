//! The simulator's gate set.
//!
//! This is the vocabulary gate backends lower operator descriptors into and
//! the transpiler rewrites. It covers everything the paper's two workflows
//! need — the QFT motivational example (H, controlled-phase, SWAP) and the
//! QAOA Max-Cut path (H, RZZ, RX) — plus the `{sx, rz, cx}` hardware basis of
//! the paper's Listing 4 context and the generic `U(θ, φ, λ)` used by
//! single-qubit resynthesis.
//!
//! Rotation angles are [`ParamExpr`]s, so a gate may carry **symbolic** late-
//! bound parameters all the way through routing and optimization; only the
//! matrix accessors require bound angles. Concrete angles convert implicitly
//! via `From<f64>` (`Gate::Rz(0, theta.into())`).

use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI};

use crate::complex::Complex64;
use crate::param::ParamExpr;

/// A quantum gate applied to specific qubit indices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// S†.
    Sdg(usize),
    /// T = diag(1, e^{iπ/4}).
    T(usize),
    /// T†.
    Tdg(usize),
    /// √X — a hardware-native gate in the paper's `[sx, rz, cx]` basis.
    Sx(usize),
    /// Rotation about X by θ.
    Rx(usize, ParamExpr),
    /// Rotation about Y by θ.
    Ry(usize, ParamExpr),
    /// Rotation about Z by θ (global-phase-free diag(e^{-iθ/2}, e^{iθ/2})).
    Rz(usize, ParamExpr),
    /// Phase gate P(λ) = diag(1, e^{iλ}).
    Phase(usize, ParamExpr),
    /// Generic single-qubit U(θ, φ, λ).
    U(usize, ParamExpr, ParamExpr, ParamExpr),
    /// Controlled-X (control, target).
    Cx(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Controlled-phase CP(λ) (control, target, λ).
    Cp(usize, usize, ParamExpr),
    /// SWAP.
    Swap(usize, usize),
    /// Two-qubit ZZ interaction exp(-i θ/2 Z⊗Z) — the QAOA cost layer's
    /// native primitive.
    Rzz(usize, usize, ParamExpr),
}

impl Gate {
    /// Lower-case gate name as used in context `basis_gates` lists.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Sx(_) => "sx",
            Gate::Rx(_, _) => "rx",
            Gate::Ry(_, _) => "ry",
            Gate::Rz(_, _) => "rz",
            Gate::Phase(_, _) => "p",
            Gate::U(_, _, _, _) => "u",
            Gate::Cx(_, _) => "cx",
            Gate::Cz(_, _) => "cz",
            Gate::Cp(_, _, _) => "cp",
            Gate::Swap(_, _) => "swap",
            Gate::Rzz(_, _, _) => "rzz",
        }
    }

    /// Qubits the gate acts on (control first for controlled gates).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Sx(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _)
            | Gate::U(q, _, _, _) => vec![q],
            Gate::Cx(c, t)
            | Gate::Cz(c, t)
            | Gate::Cp(c, t, _)
            | Gate::Swap(c, t)
            | Gate::Rzz(c, t, _) => {
                vec![c, t]
            }
        }
    }

    /// True for two-qubit (entangling) gates.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().len() == 2
    }

    /// True if any angle of the gate still carries unbound symbols.
    pub fn is_symbolic(&self) -> bool {
        match self {
            Gate::Rx(_, t)
            | Gate::Ry(_, t)
            | Gate::Rz(_, t)
            | Gate::Phase(_, t)
            | Gate::Cp(_, _, t)
            | Gate::Rzz(_, _, t) => t.is_symbolic(),
            Gate::U(_, a, b, c) => a.is_symbolic() || b.is_symbolic() || c.is_symbolic(),
            _ => false,
        }
    }

    /// Substitute a slot-indexed value table into every symbolic angle.
    pub fn bind(&self, values: &[f64]) -> Gate {
        match *self {
            Gate::Rx(q, t) => Gate::Rx(q, t.bind(values)),
            Gate::Ry(q, t) => Gate::Ry(q, t.bind(values)),
            Gate::Rz(q, t) => Gate::Rz(q, t.bind(values)),
            Gate::Phase(q, t) => Gate::Phase(q, t.bind(values)),
            Gate::U(q, a, b, c) => Gate::U(q, a.bind(values), b.bind(values), c.bind(values)),
            Gate::Cp(c, t, l) => Gate::Cp(c, t, l.bind(values)),
            Gate::Rzz(a, b, t) => Gate::Rzz(a, b, t.bind(values)),
            other => other,
        }
    }

    /// The inverse gate. Exact for symbolic angles (negation is affine).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(q),
            Gate::X(q) => Gate::X(q),
            Gate::Y(q) => Gate::Y(q),
            Gate::Z(q) => Gate::Z(q),
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            // sx⁻¹ = sx† = rx(-π/2) up to global phase.
            Gate::Sx(q) => Gate::Rx(q, (-FRAC_PI_2).into()),
            Gate::Rx(q, t) => Gate::Rx(q, t.neg()),
            Gate::Ry(q, t) => Gate::Ry(q, t.neg()),
            Gate::Rz(q, t) => Gate::Rz(q, t.neg()),
            Gate::Phase(q, t) => Gate::Phase(q, t.neg()),
            Gate::U(q, theta, phi, lambda) => Gate::U(q, theta.neg(), lambda.neg(), phi.neg()),
            Gate::Cx(c, t) => Gate::Cx(c, t),
            Gate::Cz(c, t) => Gate::Cz(c, t),
            Gate::Cp(c, t, l) => Gate::Cp(c, t, l.neg()),
            Gate::Swap(a, b) => Gate::Swap(a, b),
            Gate::Rzz(a, b, t) => Gate::Rzz(a, b, t.neg()),
        }
    }

    /// Remap qubit indices through `map` (used by routing and register
    /// layout). `map[i]` is the new index of old qubit `i`.
    pub fn remap(&self, map: &[usize]) -> Gate {
        let m = |q: usize| map[q];
        match *self {
            Gate::H(q) => Gate::H(m(q)),
            Gate::X(q) => Gate::X(m(q)),
            Gate::Y(q) => Gate::Y(m(q)),
            Gate::Z(q) => Gate::Z(m(q)),
            Gate::S(q) => Gate::S(m(q)),
            Gate::Sdg(q) => Gate::Sdg(m(q)),
            Gate::T(q) => Gate::T(m(q)),
            Gate::Tdg(q) => Gate::Tdg(m(q)),
            Gate::Sx(q) => Gate::Sx(m(q)),
            Gate::Rx(q, t) => Gate::Rx(m(q), t),
            Gate::Ry(q, t) => Gate::Ry(m(q), t),
            Gate::Rz(q, t) => Gate::Rz(m(q), t),
            Gate::Phase(q, t) => Gate::Phase(m(q), t),
            Gate::U(q, a, b, c) => Gate::U(m(q), a, b, c),
            Gate::Cx(c, t) => Gate::Cx(m(c), m(t)),
            Gate::Cz(c, t) => Gate::Cz(m(c), m(t)),
            Gate::Cp(c, t, l) => Gate::Cp(m(c), m(t), l),
            Gate::Swap(a, b) => Gate::Swap(m(a), m(b)),
            Gate::Rzz(a, b, t) => Gate::Rzz(m(a), m(b), t),
        }
    }

    /// The 2×2 matrix of a single-qubit gate in row-major order
    /// `[m00, m01, m10, m11]`, or `None` for two-qubit gates.
    ///
    /// # Panics
    /// Panics if the gate carries an unbound symbolic angle — bind the plan
    /// before requesting matrices.
    pub fn single_qubit_matrix(&self) -> Option<[Complex64; 4]> {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let m = match *self {
            Gate::H(_) => [
                Complex64::real(inv_sqrt2),
                Complex64::real(inv_sqrt2),
                Complex64::real(inv_sqrt2),
                Complex64::real(-inv_sqrt2),
            ],
            Gate::X(_) => [
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ONE,
                Complex64::ZERO,
            ],
            Gate::Y(_) => [
                Complex64::ZERO,
                -Complex64::I,
                Complex64::I,
                Complex64::ZERO,
            ],
            Gate::Z(_) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                -Complex64::ONE,
            ],
            Gate::S(_) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::I,
            ],
            Gate::Sdg(_) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                -Complex64::I,
            ],
            Gate::T(_) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_phase(PI / 4.0),
            ],
            Gate::Tdg(_) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_phase(-PI / 4.0),
            ],
            Gate::Sx(_) => [
                Complex64::new(0.5, 0.5),
                Complex64::new(0.5, -0.5),
                Complex64::new(0.5, -0.5),
                Complex64::new(0.5, 0.5),
            ],
            Gate::Rx(_, t) => {
                let t = t.value();
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    Complex64::real(c),
                    Complex64::new(0.0, -s),
                    Complex64::new(0.0, -s),
                    Complex64::real(c),
                ]
            }
            Gate::Ry(_, t) => {
                let t = t.value();
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    Complex64::real(c),
                    Complex64::real(-s),
                    Complex64::real(s),
                    Complex64::real(c),
                ]
            }
            Gate::Rz(_, t) => {
                let t = t.value();
                [
                    Complex64::from_phase(-t / 2.0),
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::from_phase(t / 2.0),
                ]
            }
            Gate::Phase(_, l) => [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::from_phase(l.value()),
            ],
            Gate::U(_, theta, phi, lambda) => {
                let (theta, phi, lambda) = (theta.value(), phi.value(), lambda.value());
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [
                    Complex64::real(c),
                    Complex64::from_phase(lambda).scale(-s),
                    Complex64::from_phase(phi).scale(s),
                    Complex64::from_phase(phi + lambda).scale(c),
                ]
            }
            _ => return None,
        };
        Some(m)
    }
}

/// Multiply two 2×2 matrices stored row-major: `a · b`.
pub fn matmul2(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Check that a 2×2 matrix is unitary within `eps`.
pub fn is_unitary2(m: &[Complex64; 4], eps: f64) -> bool {
    // m† m = I
    let dag = [m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()];
    let p = matmul2(&dag, m);
    p[0].approx_eq(Complex64::ONE, eps)
        && p[3].approx_eq(Complex64::ONE, eps)
        && p[1].approx_eq(Complex64::ZERO, eps)
        && p[2].approx_eq(Complex64::ZERO, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamExpr;

    const EPS: f64 = 1e-10;

    fn single_qubit_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Sx(0),
            Gate::Rx(0, 0.7.into()),
            Gate::Ry(0, (-1.3).into()),
            Gate::Rz(0, 2.1.into()),
            Gate::Phase(0, 0.9.into()),
            Gate::U(0, 1.0.into(), 0.5.into(), (-0.3).into()),
        ]
    }

    #[test]
    fn all_single_qubit_matrices_are_unitary() {
        for gate in single_qubit_gates() {
            let m = gate.single_qubit_matrix().unwrap();
            assert!(is_unitary2(&m, EPS), "{} is not unitary", gate.name());
        }
    }

    #[test]
    fn two_qubit_gates_have_no_single_matrix() {
        for gate in [
            Gate::Cx(0, 1),
            Gate::Cz(0, 1),
            Gate::Swap(0, 1),
            Gate::Rzz(0, 1, 0.3.into()),
        ] {
            assert!(gate.single_qubit_matrix().is_none());
            assert!(gate.is_two_qubit());
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx(0).single_qubit_matrix().unwrap();
        let x = Gate::X(0).single_qubit_matrix().unwrap();
        let sq = matmul2(&sx, &sx);
        for i in 0..4 {
            assert!(sq[i].approx_eq(x[i], EPS), "entry {i}");
        }
    }

    #[test]
    fn inverse_times_gate_is_identity_for_1q() {
        for gate in single_qubit_gates() {
            let m = gate.single_qubit_matrix().unwrap();
            let inv = gate.inverse().single_qubit_matrix().unwrap();
            let p = matmul2(&inv, &m);
            // Identity up to a global phase: off-diagonals vanish and the
            // diagonal entries are equal unit-magnitude numbers.
            assert!(p[1].approx_eq(Complex64::ZERO, EPS), "{}", gate.name());
            assert!(p[2].approx_eq(Complex64::ZERO, EPS), "{}", gate.name());
            assert!((p[0].abs() - 1.0).abs() < EPS, "{}", gate.name());
            assert!(p[0].approx_eq(p[3], EPS), "{}", gate.name());
        }
    }

    #[test]
    fn u_gate_specializations() {
        // U(π/2, 0, π) = H up to global phase; compare action structure.
        let u = Gate::U(0, std::f64::consts::FRAC_PI_2.into(), 0.0.into(), PI.into())
            .single_qubit_matrix()
            .unwrap();
        let h = Gate::H(0).single_qubit_matrix().unwrap();
        for i in 0..4 {
            assert!(u[i].approx_eq(h[i], EPS), "entry {i}: {} vs {}", u[i], h[i]);
        }
    }

    #[test]
    fn names_and_qubits() {
        assert_eq!(Gate::Cx(2, 5).name(), "cx");
        assert_eq!(Gate::Cx(2, 5).qubits(), vec![2, 5]);
        assert_eq!(Gate::Rz(3, 0.1.into()).qubits(), vec![3]);
        assert_eq!(Gate::Rzz(0, 1, 0.4.into()).name(), "rzz");
    }

    #[test]
    fn remap_changes_indices() {
        let map = vec![2, 0, 1];
        assert_eq!(Gate::Cx(0, 2).remap(&map), Gate::Cx(2, 1));
        assert_eq!(Gate::H(1).remap(&map), Gate::H(0));
    }

    #[test]
    fn phase_and_rz_differ_by_global_phase_only() {
        let theta = 0.83;
        let p = Gate::Phase(0, theta.into()).single_qubit_matrix().unwrap();
        let rz = Gate::Rz(0, theta.into()).single_qubit_matrix().unwrap();
        // p = e^{iθ/2} rz  ⇒ ratio of corresponding entries is a fixed phase.
        let phase = Complex64::from_phase(theta / 2.0);
        assert!(p[0].approx_eq(rz[0] * phase, EPS));
        assert!(p[3].approx_eq(rz[3] * phase, EPS));
    }

    #[test]
    fn symbolic_gates_bind_to_concrete_gates() {
        let g = Gate::Rzz(0, 1, ParamExpr::symbol(0).scale(2.0));
        assert!(g.is_symbolic());
        assert!(!g.bind(&[0.4]).is_symbolic());
        assert_eq!(g.bind(&[0.4]), Gate::Rzz(0, 1, 0.8.into()));
        // Binding is the identity on concrete gates.
        assert_eq!(Gate::H(0).bind(&[]), Gate::H(0));
        assert_eq!(Gate::Rx(0, 0.3.into()).bind(&[]), Gate::Rx(0, 0.3.into()));
    }

    #[test]
    fn symbolic_inverse_cancels_after_binding() {
        let g = Gate::Rx(0, ParamExpr::symbol(0));
        let roundtrip = g.inverse().bind(&[0.9]).single_qubit_matrix().unwrap();
        let forward = g.bind(&[0.9]).single_qubit_matrix().unwrap();
        let p = matmul2(&roundtrip, &forward);
        assert!(p[1].approx_eq(Complex64::ZERO, EPS));
        assert!(p[2].approx_eq(Complex64::ZERO, EPS));
    }

    #[test]
    #[should_panic(expected = "unbound symbolic")]
    fn matrix_of_symbolic_gate_panics() {
        Gate::Rx(0, ParamExpr::symbol(0)).single_qubit_matrix();
    }

    #[test]
    fn symbolic_gates_serde_round_trip() {
        let g = Gate::Cp(0, 1, ParamExpr::symbol(2).shift(0.5));
        let json = serde_json::to_string(&g).unwrap();
        let back: Gate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
