//! Zero-copy parameter binding: a shared immutable plan circuit plus a small
//! per-job table of rewritten symbolic sites.
//!
//! A cached parametric plan used to be bound by cloning its whole gate vector
//! and rewriting the symbolic sites in the copy — a flat O(gates) copy per
//! job. [`BoundCircuit`] replaces the copy with an **overlay**: the plan's
//! circuit stays shared behind an [`Arc`], and binding records only the
//! `(site, bound gate)` pairs. Execution consults the overlay per gate
//! through [`crate::circuit::CircuitView`], so an N-point sweep executes one
//! shared circuit N times with O(#sites) per-job state.

use std::sync::Arc;

use crate::circuit::{Circuit, CircuitView};
use crate::gate::Gate;

/// A bound view over a shared circuit: `base` is the plan's immutable
/// (possibly symbolic) circuit, `overrides` the per-job bound gates at the
/// plan's symbolic sites, ascending by gate index.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCircuit {
    base: Arc<Circuit>,
    overrides: Vec<(usize, Gate)>,
}

impl BoundCircuit {
    /// Bind the slot-ordered `values` into `base` at the given symbolic gate
    /// indices (ascending, as produced by
    /// [`Circuit::symbolic_gate_indices`]). O(#sites); the base circuit is
    /// shared, never copied.
    ///
    /// # Panics
    /// Panics if a site index is out of range of the base circuit's gates.
    pub fn bind_sites(base: Arc<Circuit>, sites: &[usize], values: &[f64]) -> Self {
        debug_assert!(
            sites.windows(2).all(|w| w[0] < w[1]),
            "substitution sites must be strictly ascending"
        );
        let overrides = sites
            .iter()
            .map(|&i| (i, base.gates()[i].bind(values)))
            .collect();
        BoundCircuit { base, overrides }
    }

    /// A view of an already-concrete circuit: no overrides, execution reads
    /// the shared base directly.
    pub fn concrete(base: Arc<Circuit>) -> Self {
        BoundCircuit {
            base,
            overrides: Vec::new(),
        }
    }

    /// The shared base circuit.
    pub fn base(&self) -> &Arc<Circuit> {
        &self.base
    }

    /// The per-job `(site, bound gate)` rewrites, ascending by site.
    pub fn overrides(&self) -> &[(usize, Gate)] {
        &self.overrides
    }

    /// Iterate the effective gates in application order: base gates with the
    /// overlay substituted at its sites — a merge walk, O(1) per gate.
    pub fn gates(&self) -> impl Iterator<Item = &Gate> + '_ {
        let overrides = &self.overrides;
        let mut next = 0usize;
        self.base.gates().iter().enumerate().map(move |(i, gate)| {
            if overrides.get(next).is_some_and(|(site, _)| *site == i) {
                let bound = &overrides[next].1;
                next += 1;
                bound
            } else {
                gate
            }
        })
    }

    /// Materialize the view into an owned [`Circuit`] — the differential
    /// test / compatibility path; the execute path never calls this.
    pub fn to_circuit(&self) -> Circuit {
        let mut out = self.base.as_ref().clone();
        out.rewrite_gates(&self.overrides);
        out
    }
}

impl CircuitView for BoundCircuit {
    fn width(&self) -> usize {
        self.base.num_qubits()
    }

    fn measurement_map(&self) -> &[usize] {
        self.base.measured()
    }

    fn gate_count(&self) -> usize {
        self.base.gates().len()
    }

    fn gate_at(&self, i: usize) -> &Gate {
        match self.overrides.binary_search_by_key(&i, |(site, _)| *site) {
            Ok(k) => &self.overrides[k].1,
            Err(_) => &self.base.gates()[i],
        }
    }

    fn for_each_gate(&self, f: &mut dyn FnMut(&Gate)) {
        for gate in self.gates() {
            f(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamExpr;

    fn symbolic_base() -> Arc<Circuit> {
        let mut qc = Circuit::new(2);
        qc.push(Gate::H(0));
        qc.push(Gate::Rzz(0, 1, ParamExpr::symbol(0).scale(2.0)));
        qc.push(Gate::Sx(1));
        qc.push(Gate::Rx(1, ParamExpr::symbol(1)));
        qc.measure_all();
        Arc::new(qc)
    }

    #[test]
    fn overlay_substitutes_only_the_sites() {
        let base = symbolic_base();
        let sites = base.symbolic_gate_indices();
        assert_eq!(sites, vec![1, 3]);
        let bound = BoundCircuit::bind_sites(Arc::clone(&base), &sites, &[0.25, 0.5]);

        assert_eq!(bound.gate_at(0), &Gate::H(0));
        assert_eq!(bound.gate_at(1), &Gate::Rzz(0, 1, 0.5.into()));
        assert_eq!(bound.gate_at(2), &Gate::Sx(1));
        assert_eq!(bound.gate_at(3), &Gate::Rx(1, 0.5.into()));
        assert_eq!(bound.overrides().len(), 2);
        assert!(Arc::ptr_eq(bound.base(), &base), "base stays shared");
    }

    #[test]
    fn merge_iterator_matches_random_access() {
        let base = symbolic_base();
        let sites = base.symbolic_gate_indices();
        let bound = BoundCircuit::bind_sites(base, &sites, &[1.5, -0.75]);
        let walked: Vec<&Gate> = bound.gates().collect();
        let indexed: Vec<&Gate> = (0..bound.gate_count()).map(|i| bound.gate_at(i)).collect();
        assert_eq!(walked, indexed);
    }

    #[test]
    fn to_circuit_matches_bind_sites_clone_path() {
        let base = symbolic_base();
        let sites = base.symbolic_gate_indices();
        let values = [0.9, 2.1];
        let overlay = BoundCircuit::bind_sites(Arc::clone(&base), &sites, &values);
        let cloned = base.bind_sites(&sites, &values);
        assert_eq!(overlay.to_circuit(), cloned);
    }

    #[test]
    fn concrete_view_reads_the_base_verbatim() {
        let mut qc = Circuit::new(1);
        qc.push(Gate::H(0));
        qc.measure_all();
        let base = Arc::new(qc);
        let view = BoundCircuit::concrete(Arc::clone(&base));
        assert!(view.overrides().is_empty());
        assert_eq!(view.gate_count(), 1);
        assert_eq!(view.measurement_map(), base.measured());
    }
}
