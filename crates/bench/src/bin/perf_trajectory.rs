//! `perf_trajectory` — record the streaming service's measured performance
//! as machine-readable JSON artifacts at the repository root:
//!
//! * `BENCH_sweep.json` — cold-cache vs warm-cache sweep throughput (the
//!   realization-cache amortization story);
//! * `BENCH_dispatch.json` — micro-batched vs sequential dispatch
//!   throughput, stage-tracing overhead (tracing off — the `NoopTracer`
//!   fast path — vs the bounded ring tracer), and the cost model's mean
//!   absolute estimate error.
//!
//! Committing the files makes the perf trajectory diffable PR over PR.
//! Numbers are best-of-N wall-clock measurements on whatever machine runs
//! them, so compare shapes and ratios, not absolute values, across hosts.
//!
//! Run with: `cargo run --release -p qml-bench --bin perf_trajectory`
//! (append `-- --quick` for a fast low-repetition pass).

use std::path::PathBuf;

use serde::Serialize;

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

/// 12-node ring QAOA routed onto a linear coupling map at optimization
/// level 2: the shared realization is genuinely expensive, so cold-vs-warm
/// and batched-vs-solo differences are signal, not noise.
const NODES: usize = 12;
const LAYERS: usize = 2;
const SAMPLES: u64 = 32;

fn context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(SAMPLES)
            .with_seed(seed)
            .with_target(Target::linear(NODES))
            .with_optimization_level(2),
    )
}

fn template() -> JobBundle {
    qaoa_maxcut_program(
        &cycle(NODES),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES; LAYERS]),
    )
    .expect("valid QAOA bundle")
}

/// Submit one `points`-job seeded sweep and drain it; seeds are offset so
/// repeated warm runs submit distinct jobs that still share the one plan.
fn drain_sweep(service: &QmlService, points: u64, seed_base: u64) -> f64 {
    let mut sweep = SweepRequest::new("grid", template());
    for seed in 0..points {
        sweep = sweep.with_context(context(seed_base + seed));
    }
    service
        .submit_sweep("bench", sweep)
        .expect("sweep accepted");
    let report = service.run_pending();
    assert_eq!(report.failed, 0, "bench jobs must not fail");
    report.jobs_per_second
}

#[derive(Serialize)]
struct SweepSide {
    jobs_per_second: f64,
    ms_per_job: f64,
    gate_plan_misses: u64,
    gate_plan_hits: u64,
}

#[derive(Serialize)]
struct SweepDoc {
    version: u32,
    workload: String,
    points: u64,
    repetitions: u32,
    cold: SweepSide,
    warm: SweepSide,
    warm_speedup: f64,
}

#[derive(Serialize)]
struct DispatchSide {
    jobs_per_second: f64,
    ms_per_job: f64,
    micro_batches: u64,
}

#[derive(Serialize)]
struct TracingSide {
    jobs_per_second: f64,
    trace_events_recorded: u64,
    trace_events_dropped: u64,
}

#[derive(Serialize)]
struct DispatchDoc {
    version: u32,
    workload: String,
    points: u64,
    repetitions: u32,
    sequential: DispatchSide,
    batched: DispatchSide,
    batched_speedup: f64,
    tracing_off: TracingSide,
    tracing_on: TracingSide,
    tracing_overhead_percent: f64,
    mean_abs_estimate_error_units: f64,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn write_doc<T: Serialize>(name: &str, doc: &T) {
    let path = repo_root().join(name);
    let json = serde_json::to_string_pretty(doc).expect("serializable doc");
    std::fs::write(&path, json + "\n").expect("artifact written");
    println!("[perf] wrote {}", path.display());
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let (points, reps): (u64, u32) = if quick { (8, 1) } else { (16, 3) };
    let workload = format!(
        "QAOA p={LAYERS} on a {NODES}-node ring, linear coupling map, \
         optimization level 2, {SAMPLES} samples/job, 2 workers"
    );
    println!("[perf] workload: {workload}");
    println!("[perf] {points} jobs/sweep, best of {reps} repetitions");

    // --- BENCH_sweep.json: cold vs warm realization cache ------------------
    let mut cold_best = 0.0f64;
    let mut cold_metrics = None;
    for _ in 0..reps {
        let service = QmlService::with_config(ServiceConfig::with_workers(2));
        cold_best = cold_best.max(drain_sweep(&service, points, 0));
        cold_metrics = Some(service.metrics());
    }
    let cold_metrics = cold_metrics.expect("at least one repetition");

    let warm_service = QmlService::with_config(ServiceConfig::with_workers(2));
    drain_sweep(&warm_service, points, 0); // prime the plan cache
    let mut warm_best = 0.0f64;
    for rep in 0..reps {
        warm_best = warm_best.max(drain_sweep(&warm_service, points, (rep as u64 + 1) * 1000));
    }
    let warm_metrics = warm_service.metrics();

    let sweep_doc = SweepDoc {
        version: 1,
        workload: workload.clone(),
        points,
        repetitions: reps,
        cold: SweepSide {
            jobs_per_second: cold_best,
            ms_per_job: 1e3 / cold_best,
            gate_plan_misses: cold_metrics.gate_cache.misses,
            gate_plan_hits: cold_metrics.gate_cache.hits,
        },
        warm: SweepSide {
            jobs_per_second: warm_best,
            ms_per_job: 1e3 / warm_best,
            gate_plan_misses: warm_metrics.gate_cache.misses,
            gate_plan_hits: warm_metrics.gate_cache.hits,
        },
        warm_speedup: warm_best / cold_best,
    };
    println!(
        "[perf] sweep: cold {cold_best:.0} jobs/s vs warm {warm_best:.0} jobs/s \
         ({:.2}x)",
        sweep_doc.warm_speedup
    );
    write_doc("BENCH_sweep.json", &sweep_doc);

    // --- BENCH_dispatch.json: batching, tracing overhead, estimate error ---
    let run_dispatch = |config: ServiceConfig| {
        let mut best = 0.0f64;
        let mut service = None;
        for _ in 0..reps {
            let fresh = QmlService::with_config(config.clone());
            best = best.max(drain_sweep(&fresh, points, 0));
            service = Some(fresh);
        }
        (best, service.expect("at least one repetition"))
    };

    let (solo_jps, _) = run_dispatch(ServiceConfig::with_workers(2).with_max_batch(1));
    let (batched_jps, batched_service) =
        run_dispatch(ServiceConfig::with_workers(2).with_max_batch(8));
    let batched_metrics = batched_service.metrics();

    // Tracing off is the NoopTracer fast path — the exact pre-tracing
    // dispatch pipeline — so off-vs-on is the tracer's end-to-end overhead.
    let (off_jps, off_service) = run_dispatch(ServiceConfig::with_workers(2).with_tracing(false));
    let (on_jps, on_service) = run_dispatch(ServiceConfig::with_workers(2).with_tracing(true));
    let off_stats = off_service.trace_stats();
    let on_stats = on_service.trace_stats();
    let overhead_percent = (off_jps - on_jps) / off_jps * 100.0;

    let dispatch_doc = DispatchDoc {
        version: 1,
        workload,
        points,
        repetitions: reps,
        sequential: DispatchSide {
            jobs_per_second: solo_jps,
            ms_per_job: 1e3 / solo_jps,
            micro_batches: 0,
        },
        batched: DispatchSide {
            jobs_per_second: batched_jps,
            ms_per_job: 1e3 / batched_jps,
            micro_batches: batched_metrics.scheduler.batches,
        },
        batched_speedup: batched_jps / solo_jps,
        tracing_off: TracingSide {
            jobs_per_second: off_jps,
            trace_events_recorded: off_stats.recorded,
            trace_events_dropped: off_stats.dropped,
        },
        tracing_on: TracingSide {
            jobs_per_second: on_jps,
            trace_events_recorded: on_stats.recorded,
            trace_events_dropped: on_stats.dropped,
        },
        tracing_overhead_percent: overhead_percent,
        mean_abs_estimate_error_units: batched_metrics.scheduler.mean_abs_estimate_error(),
    };
    println!(
        "[perf] dispatch: sequential {solo_jps:.0} vs batched {batched_jps:.0} jobs/s \
         ({:.2}x); tracing off {off_jps:.0} vs on {on_jps:.0} jobs/s \
         ({overhead_percent:+.1}% overhead); mean |estimate error| = {:.2} units",
        dispatch_doc.batched_speedup, dispatch_doc.mean_abs_estimate_error_units
    );
    write_doc("BENCH_dispatch.json", &dispatch_doc);
}
