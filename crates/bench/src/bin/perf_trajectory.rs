//! `perf_trajectory` — record the streaming service's measured performance
//! as machine-readable JSON artifacts at the repository root:
//!
//! * `BENCH_sweep.json` — cold-cache vs warm-cache sweep throughput (the
//!   realization-cache amortization story);
//! * `BENCH_dispatch.json` — micro-batched vs sequential dispatch
//!   throughput, stage-tracing overhead (tracing off — the `NoopTracer`
//!   fast path — vs the bounded ring tracer), the cost model's mean
//!   absolute estimate error, and the latency-class queue-wait p99 under
//!   saturation (closed-loop latency probes vs a backlogged throughput
//!   whale sharing the same two workers).
//!
//! Committing the files makes the perf trajectory diffable PR over PR.
//! Numbers are wall-clock measurements on whatever machine runs them, so
//! compare shapes and ratios, not absolute values, across hosts.
//!
//! Every A/B comparison here follows the same protocol: a discarded
//! warm-up pass, then **alternating** A/B repetitions with the **median**
//! of each side reported. Machine throughput drifts run to run (shared
//! hosts, frequency scaling), so separate best-of passes compare different
//! weather, not different code — alternation makes both sides sample the
//! same drift, and the median shrugs off one unlucky repetition. This is
//! what keeps small signals (tracing overhead, batching gain) from going
//! negative out of pure noise.
//!
//! Run with: `cargo run --release -p qml-bench --bin perf_trajectory`
//! (append `-- --quick` for a fast low-repetition pass, or `-- --validate`
//! to check that the committed artifacts parse against the current schema
//! without re-measuring anything).

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use qml_core::graph::cycle;
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

/// Schema version of both artifacts; bump on any field change so
/// `--validate` (and CI) rejects stale committed files.
const ARTIFACT_VERSION: u32 = 3;

/// 8-node ring QAOA routed onto a linear coupling map at optimization
/// level 3. 8 qubits keeps simulation cheap relative to transpilation, so
/// the cold/warm gap is signal, not noise.
///
/// Two workload shapes share that base:
///
/// * the **cache story** sweeps a ladder of distinct circuit depths —
///   every job its own plan-cache key, so a cold sweep pays one
///   transpilation per job while a warm sweep pays none;
/// * the **dispatch story** runs one shallow depth for every job — one
///   shared plan key, so the scheduler has plan-compatible neighbors to
///   coalesce and per-job dispatch overhead is the dominant term.
const NODES: usize = 8;
const MAX_DEPTH: usize = 16;
const DISPATCH_DEPTH: usize = 2;
const SAMPLES: u64 = 32;
const OPT_LEVEL: u8 = 3;

fn context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(SAMPLES)
            .with_seed(seed)
            .with_target(Target::linear(NODES))
            .with_optimization_level(OPT_LEVEL),
    )
}

fn template(layers: usize) -> JobBundle {
    qaoa_maxcut_program(
        &cycle(NODES),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES; layers]),
    )
    .expect("valid QAOA bundle")
}

/// Submit one job per depth in `depths` (seeds offset so repeated warm runs
/// submit distinct jobs that still share plans), drain them all, and return
/// the drain throughput.
fn submit_and_drain(
    service: &QmlService,
    depths: impl Iterator<Item = usize>,
    seed_base: u64,
) -> f64 {
    for (i, layers) in depths.enumerate() {
        let sweep =
            SweepRequest::new("grid", template(layers)).with_context(context(seed_base + i as u64));
        service
            .submit_sweep("bench", sweep)
            .expect("sweep accepted");
    }
    let report = service.run_pending();
    assert_eq!(report.failed, 0, "bench jobs must not fail");
    report.jobs_per_second
}

/// Cache-story workload: a ladder of distinct depths, one plan per job.
fn drain_ladder(service: &QmlService, points: u64, seed_base: u64) -> f64 {
    submit_and_drain(
        service,
        (0..points as usize).map(|i| 1 + (i % MAX_DEPTH)),
        seed_base,
    )
}

/// Dispatch-story workload: every job at [`DISPATCH_DEPTH`], one shared
/// plan — adjacent queue entries are batch-compatible.
fn drain_uniform(service: &QmlService, points: u64, seed_base: u64) -> f64 {
    submit_and_drain(
        service,
        std::iter::repeat_n(DISPATCH_DEPTH, points as usize),
        seed_base,
    )
}

#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct SweepSide {
    jobs_per_second: f64,
    ms_per_job: f64,
    gate_plan_misses: u64,
    gate_plan_hits: u64,
}

#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct SweepDoc {
    version: u32,
    workload: String,
    points: u64,
    repetitions: u32,
    cold: SweepSide,
    warm: SweepSide,
    warm_speedup: f64,
}

#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct DispatchSide {
    jobs_per_second: f64,
    ms_per_job: f64,
    micro_batches: u64,
}

#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct TracingSide {
    jobs_per_second: f64,
    trace_events_recorded: u64,
    trace_events_dropped: u64,
}

/// One service class's queue-wait percentiles over the saturation run, in
/// microseconds, straight from the per-class histograms of the
/// observability snapshot.
#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct ClassWaitSide {
    jobs: u64,
    p50_wait_us: u64,
    p99_wait_us: u64,
}

#[derive(Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct DispatchDoc {
    version: u32,
    workload: String,
    points: u64,
    repetitions: u32,
    sequential: DispatchSide,
    batched: DispatchSide,
    batched_speedup: f64,
    tracing_off: TracingSide,
    tracing_on: TracingSide,
    /// Median-of-alternating-reps overhead, clamped at 0 when the raw value
    /// is negative but within the run-to-run noise band.
    tracing_overhead_percent: f64,
    /// The unclamped median-based estimate (may be slightly negative).
    tracing_overhead_raw_percent: f64,
    /// Run-to-run spread of the tracing-off side, as a percentage of its
    /// median — the noise floor the overhead is judged against.
    tracing_noise_percent: f64,
    mean_abs_estimate_error_units: f64,
    /// Closed-loop latency-class probes (submit one, block on the result)
    /// measured while a throughput whale keeps both workers backlogged.
    latency_class: ClassWaitSide,
    /// The saturating whale's own queue waits over the same interval.
    throughput_class: ClassWaitSide,
    /// Throughput p99 wait / latency p99 wait — how much less a
    /// latency-class job waits under identical saturation.
    latency_p99_wait_advantage: f64,
    /// Deadline misses among the latency probes; the probes carry no
    /// deadline, so anything nonzero means miss accounting is broken.
    latency_deadline_miss: u64,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn write_doc<T: Serialize>(name: &str, doc: &T) {
    let path = repo_root().join(name);
    let json = serde_json::to_string_pretty(doc).expect("serializable doc");
    std::fs::write(&path, json + "\n").expect("artifact written");
    println!("[perf] wrote {}", path.display());
}

/// Parse a committed artifact against the current schema (strict fields) and
/// check its version stamp. Returns an error string instead of panicking so
/// `--validate` can report every stale artifact before exiting nonzero.
fn validate_doc<T: Serialize + for<'de> Deserialize<'de>>(
    name: &str,
    version_of: impl Fn(&T) -> u32,
) -> std::result::Result<(), String> {
    let path = repo_root().join(name);
    let raw = std::fs::read_to_string(&path)
        .map_err(|e| format!("{name}: unreadable ({e}) — run perf_trajectory to regenerate"))?;
    let doc: T = serde_json::from_str(&raw)
        .map_err(|e| format!("{name}: stale schema ({e}) — run perf_trajectory to regenerate"))?;
    let found = version_of(&doc);
    if found != ARTIFACT_VERSION {
        return Err(format!(
            "{name}: version {found}, expected {ARTIFACT_VERSION} — run perf_trajectory to regenerate"
        ));
    }
    // Round-trip: the committed bytes must re-serialize from the parsed doc
    // without loss (field drift shows up as a re-parse failure above; this
    // guards against hand-edited artifacts with lossy values).
    serde_json::to_string_pretty(&doc)
        .map(|_| ())
        .map_err(|e| format!("{name}: does not re-serialize ({e})"))
}

fn validate_artifacts() -> i32 {
    let mut failures = 0;
    for result in [
        validate_doc::<SweepDoc>("BENCH_sweep.json", |d| d.version),
        validate_doc::<DispatchDoc>("BENCH_dispatch.json", |d| d.version),
    ] {
        match result {
            Ok(()) => {}
            Err(msg) => {
                println!("[perf] VALIDATION FAILED: {msg}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("[perf] committed artifacts parse cleanly at schema version {ARTIFACT_VERSION}");
    }
    failures
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    if std::env::args().any(|arg| arg == "--validate") {
        std::process::exit(validate_artifacts());
    }
    let quick = std::env::args().any(|arg| arg == "--quick");
    let (points, reps): (u64, u32) = if quick { (8, 3) } else { (16, 7) };
    let workload = format!(
        "QAOA on a {NODES}-node ring, linear coupling map, optimization level \
         {OPT_LEVEL}, {SAMPLES} samples/job, 2 workers; cache story sweeps a \
         depth ladder p=1..={MAX_DEPTH}, dispatch story runs p={DISPATCH_DEPTH} \
         uniformly"
    );
    println!("[perf] workload: {workload}");
    println!("[perf] {points} jobs/sweep, median of {reps} alternating repetitions");

    // --- BENCH_sweep.json: cold vs warm realization cache ------------------
    // One discarded cold warm-up, then prime a persistent warm service; the
    // measured repetitions alternate fresh-service (cold) and primed-service
    // (warm) sweeps so both sides see the same machine weather.
    drain_ladder(
        &QmlService::with_config(ServiceConfig::with_workers(2)),
        points,
        0,
    );
    let warm_service = QmlService::with_config(ServiceConfig::with_workers(2));
    drain_ladder(&warm_service, points, 0); // prime the plan cache
    let mut cold_samples = Vec::with_capacity(reps as usize);
    let mut warm_samples = Vec::with_capacity(reps as usize);
    let mut cold_metrics = None;
    for rep in 0..reps {
        let cold_service = QmlService::with_config(ServiceConfig::with_workers(2));
        cold_samples.push(drain_ladder(&cold_service, points, 0));
        cold_metrics = Some(cold_service.metrics());
        warm_samples.push(drain_ladder(&warm_service, points, (rep as u64 + 1) * 1000));
    }
    let cold_metrics = cold_metrics.expect("at least one repetition");
    let cold_jps = median(cold_samples);
    let warm_jps = median(warm_samples);
    let warm_metrics = warm_service.metrics();

    let sweep_doc = SweepDoc {
        version: ARTIFACT_VERSION,
        workload: workload.clone(),
        points,
        repetitions: reps,
        cold: SweepSide {
            jobs_per_second: cold_jps,
            ms_per_job: 1e3 / cold_jps,
            gate_plan_misses: cold_metrics.gate_cache.misses,
            gate_plan_hits: cold_metrics.gate_cache.hits,
        },
        warm: SweepSide {
            jobs_per_second: warm_jps,
            ms_per_job: 1e3 / warm_jps,
            gate_plan_misses: warm_metrics.gate_cache.misses,
            gate_plan_hits: warm_metrics.gate_cache.hits,
        },
        warm_speedup: warm_jps / cold_jps,
    };
    println!(
        "[perf] sweep: cold {cold_jps:.0} jobs/s vs warm {warm_jps:.0} jobs/s \
         ({:.2}x)",
        sweep_doc.warm_speedup
    );
    write_doc("BENCH_sweep.json", &sweep_doc);

    // --- BENCH_dispatch.json: batching, tracing overhead, estimate error ---
    // Longer sweeps than the cache story (per-job times are sub-millisecond,
    // so a 16-job run is mostly scheduler jitter), on the uniform workload so
    // every queued job is batch-compatible; same alternate-and-median
    // protocol as the sweep above.
    let dispatch_points = points * 4;
    let dispatch_reps = if quick { 3 } else { 7 };
    let solo_config = ServiceConfig::with_workers(2).with_max_batch(1);
    let batched_config = ServiceConfig::with_workers(2).with_max_batch(8);
    for config in [&solo_config, &batched_config] {
        drain_uniform(&QmlService::with_config(config.clone()), dispatch_points, 0);
    }
    let mut solo_samples = Vec::with_capacity(dispatch_reps);
    let mut batched_samples = Vec::with_capacity(dispatch_reps);
    let mut batched_service = None;
    for _ in 0..dispatch_reps {
        let solo = QmlService::with_config(solo_config.clone());
        solo_samples.push(drain_uniform(&solo, dispatch_points, 0));
        let batched = QmlService::with_config(batched_config.clone());
        batched_samples.push(drain_uniform(&batched, dispatch_points, 0));
        batched_service = Some(batched);
    }
    let solo_jps = median(solo_samples);
    let batched_jps = median(batched_samples);
    let batched_metrics = batched_service.expect("dispatch reps ran").metrics();

    // Tracing off is the NoopTracer fast path — the exact pre-tracing
    // dispatch pipeline — so off-vs-on is the tracer's end-to-end overhead.
    let trace_reps = if quick { 3 } else { 7 };
    let trace_points = points * 4;
    let trace_config = |tracing: bool| ServiceConfig::with_workers(2).with_tracing(tracing);
    for tracing in [false, true] {
        drain_uniform(
            &QmlService::with_config(trace_config(tracing)),
            trace_points,
            0,
        );
    }
    let mut off_samples = Vec::with_capacity(trace_reps);
    let mut on_samples = Vec::with_capacity(trace_reps);
    let mut off_service = None;
    let mut on_service = None;
    for _ in 0..trace_reps {
        let off = QmlService::with_config(trace_config(false));
        off_samples.push(drain_uniform(&off, trace_points, 0));
        off_service = Some(off);
        let on = QmlService::with_config(trace_config(true));
        on_samples.push(drain_uniform(&on, trace_points, 0));
        on_service = Some(on);
    }
    let off_stats = off_service.expect("trace reps ran").trace_stats();
    let on_stats = on_service.expect("trace reps ran").trace_stats();
    let off_jps = median(off_samples.clone());
    let on_jps = median(on_samples.clone());
    let raw_overhead = (off_jps - on_jps) / off_jps * 100.0;
    let off_min = off_samples.iter().copied().fold(f64::INFINITY, f64::min);
    let off_max = off_samples
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let noise_percent = (off_max - off_min) / off_jps * 100.0;
    // A small negative estimate inside the noise band is "no measurable
    // overhead", not a speedup — clamp it; a negative beyond the band is
    // left visible as a red flag.
    let overhead_percent = if raw_overhead < 0.0 && raw_overhead.abs() <= noise_percent {
        0.0
    } else {
        raw_overhead
    };

    // The latency-class story: a throughput whale keeps both workers
    // backlogged (topped up whenever the queue runs low, so saturation holds
    // for the whole run) while a closed-loop probe submits one latency-class
    // job at a time and blocks on each result — the interactive-optimizer
    // shape. The per-class queue-wait histograms then split the same
    // saturated interval by class; no repetitions needed, the percentiles
    // already aggregate every probe and every whale job.
    const WHALE_CHUNK: u64 = 64;
    let sat_service = QmlService::with_config(ServiceConfig::with_workers(2));
    let sat_handle = sat_service.start().expect("saturation service starts");
    let mut whale_jobs = 0u64;
    let probes = dispatch_points;
    for probe in 0..probes {
        if sat_service.metrics().queue_depth < WHALE_CHUNK as usize {
            let mut sweep = SweepRequest::new("whale", template(DISPATCH_DEPTH));
            for i in 0..WHALE_CHUNK {
                sweep = sweep.with_context(context(whale_jobs + i));
            }
            whale_jobs += WHALE_CHUNK;
            sat_service
                .submit_sweep("bulk", sweep)
                .expect("whale accepted");
        }
        let bundle = template(DISPATCH_DEPTH)
            .with_service_class(ServiceClass::latency())
            .with_context(context(1_000_000 + probe));
        let (_, job) = sat_service.submit("probe", bundle).expect("probe accepted");
        assert!(
            sat_service
                .wait_for(job, std::time::Duration::from_secs(60))
                .is_some(),
            "latency probe starved under saturation"
        );
    }
    assert!(
        sat_service.wait_idle(std::time::Duration::from_secs(300)),
        "whale backlog must drain"
    );
    sat_handle.drain();
    let snap = sat_service.snapshot();
    let latency_wait = snap
        .latency
        .class_queue_wait
        .get("latency")
        .copied()
        .unwrap_or_default();
    let throughput_wait = snap
        .latency
        .class_queue_wait
        .get("throughput")
        .copied()
        .unwrap_or_default();
    let deadline_miss = snap
        .service
        .per_class
        .get("latency")
        .map_or(0, |c| c.deadline_miss);
    let p99_advantage = throughput_wait.p99 as f64 / (latency_wait.p99 as f64).max(1.0);
    println!(
        "[perf] class: latency p99 wait {}us vs throughput p99 wait {}us \
         ({p99_advantage:.1}x advantage, {deadline_miss} deadline misses) — \
         {probes} closed-loop probes against {whale_jobs} whale jobs",
        latency_wait.p99, throughput_wait.p99
    );

    let dispatch_doc = DispatchDoc {
        version: ARTIFACT_VERSION,
        workload,
        points,
        repetitions: reps,
        sequential: DispatchSide {
            jobs_per_second: solo_jps,
            ms_per_job: 1e3 / solo_jps,
            micro_batches: 0,
        },
        batched: DispatchSide {
            jobs_per_second: batched_jps,
            ms_per_job: 1e3 / batched_jps,
            micro_batches: batched_metrics.scheduler.batches,
        },
        batched_speedup: batched_jps / solo_jps,
        tracing_off: TracingSide {
            jobs_per_second: off_jps,
            trace_events_recorded: off_stats.recorded,
            trace_events_dropped: off_stats.dropped,
        },
        tracing_on: TracingSide {
            jobs_per_second: on_jps,
            trace_events_recorded: on_stats.recorded,
            trace_events_dropped: on_stats.dropped,
        },
        tracing_overhead_percent: overhead_percent,
        tracing_overhead_raw_percent: raw_overhead,
        tracing_noise_percent: noise_percent,
        mean_abs_estimate_error_units: batched_metrics.scheduler.mean_abs_estimate_error(),
        latency_class: ClassWaitSide {
            jobs: latency_wait.count,
            p50_wait_us: latency_wait.p50,
            p99_wait_us: latency_wait.p99,
        },
        throughput_class: ClassWaitSide {
            jobs: throughput_wait.count,
            p50_wait_us: throughput_wait.p50,
            p99_wait_us: throughput_wait.p99,
        },
        latency_p99_wait_advantage: p99_advantage,
        latency_deadline_miss: deadline_miss,
    };
    println!(
        "[perf] dispatch: sequential {solo_jps:.0} vs batched {batched_jps:.0} jobs/s \
         ({:.2}x); tracing off {off_jps:.0} vs on {on_jps:.0} jobs/s \
         ({overhead_percent:+.1}% overhead, noise ±{noise_percent:.1}%); \
         mean |estimate error| = {:.2} units",
        dispatch_doc.batched_speedup, dispatch_doc.mean_abs_estimate_error_units
    );
    write_doc("BENCH_dispatch.json", &dispatch_doc);
}
