//! `repro` — regenerate every paper artifact in one run and print a
//! paper-vs-measured summary (the source of EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p qml-bench --bin repro`

use qml_bench::{
    anneal_context, expected_cut, fig2_job, fig3_job, gate_context, listing1_job, qaoa_grid_search,
    run_anneal, run_gate,
};
use qml_core::graph::{all_optimal_bitstrings, cycle};
use qml_core::prelude::*;
use qml_core::qec::{QecService, RepetitionCode};
use qml_core::types::QecConfig;

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    let graph = cycle(4);
    let (optimal_cut, optimal_assignments) = all_optimal_bitstrings(&graph);

    header("E1 (Fig. 2) - Max-Cut QAOA gate path");
    let gate = run_gate(&fig2_job(4096));
    let metrics = gate.gate_metrics.unwrap();
    println!("engine {}, shots {}", gate.engine, gate.shots);
    println!(
        "transpiled to [sx, rz, cx] on the 4-qubit ring: {} gates, {} two-qubit, depth {}",
        metrics.total_gates, metrics.two_qubit_gates, metrics.depth
    );
    println!(
        "fixed ring angles: P(1010) = {:.3}, P(0101) = {:.3}, expected cut = {:.2}",
        gate.probability("1010"),
        gate.probability("0101"),
        expected_cut(&graph, &gate)
    );

    header("E3 (Section 5 claim) - tuned p=1 expected cut vs paper's 3.0-3.2");
    let (gamma, beta, tuned) = qaoa_grid_search(&graph, 24, 4096);
    println!("best grid angles gamma = {gamma:.3}, beta = {beta:.3}");
    println!("measured expected cut = {tuned:.2}   (paper: approximately 3.0-3.2)");

    header("E2 (Fig. 3) - Max-Cut annealing path");
    let anneal = run_anneal(&fig3_job(1000));
    let stats = anneal.energy_stats.unwrap();
    println!("engine {}, reads {}", anneal.engine, anneal.shots);
    println!(
        "lowest energy {}, ground-state probability {:.2}, expected cut = {:.2}",
        stats.min_energy,
        stats.ground_state_probability,
        expected_cut(&graph, &anneal)
    );
    println!(
        "optimal assignments returned by BOTH paths: {:?} (cut = {optimal_cut})  gate: {} / {}  anneal: {} / {}",
        optimal_assignments,
        gate.counts.contains_key("1010"),
        gate.counts.contains_key("0101"),
        anneal.counts.contains_key("1010"),
        anneal.counts.contains_key("0101"),
    );

    header("E4 (Listing 1) - 10-qubit QFT through the middle layer");
    let qft = run_gate(&listing1_job(10_000));
    let qft_metrics = qft.gate_metrics.unwrap();
    println!(
        "shots {}, distinct outcomes {}, transpiled twoq {}, depth {}, swaps {}",
        qft.shots,
        qft.counts.len(),
        qft_metrics.two_qubit_gates,
        qft_metrics.depth,
        qft_metrics.swaps_inserted
    );
    println!("descriptor cost hint (Listing 3 style): 45 controlled phases, depth ~100");

    header("E5 (Listings 2-5) - descriptor round trip");
    let bundle = fig2_job(4096);
    let json = bundle.to_json().unwrap();
    let back = JobBundle::from_json(&json).unwrap();
    println!(
        "job.json = {} bytes, {} operators, round-trip identical = {}",
        json.len(),
        bundle.operators.len(),
        back == bundle
    );

    header("E6 (Fig. 1) - context swap through the runtime scheduler");
    let runtime = Runtime::with_default_backends();
    let gate_id = runtime
        .submit(
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(gate_context(2048, 4)),
        )
        .unwrap();
    let anneal_id = runtime
        .submit(
            maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_context(1000)),
        )
        .unwrap();
    runtime.run_all(2);
    let g = runtime.result(gate_id).unwrap();
    let a = runtime.result(anneal_id).unwrap();
    println!(
        "same intent family, swapped context: {} -> cut {:.2}   {} -> cut {:.2}",
        g.backend,
        expected_cut(&graph, &g),
        a.backend,
        expected_cut(&graph, &a)
    );

    header("E7 (Listing 5) - QEC as context");
    let with_qec = {
        let job = fig2_job(2048);
        let ctx = job.context.clone().unwrap().with_qec(QecConfig::surface(7));
        run_gate(&job.with_context(ctx))
    };
    let plain = run_gate(&fig2_job(2048));
    let estimate = with_qec.qec_estimate.unwrap();
    println!(
        "counts unchanged by QEC context: {}",
        plain.counts == with_qec.counts
    );
    println!(
        "distance-7 surface code estimate: {} physical qubits, {} syndrome rounds, P(fail) = {:.2e}",
        estimate.physical_qubits, estimate.syndrome_rounds, estimate.workload_failure_probability
    );
    println!("surface-code scaling (p = 1e-3): d -> physical/logical, p_L");
    for d in [3usize, 5, 7, 9, 11] {
        let service = QecService::from_config(&QecConfig::surface(d)).unwrap();
        println!(
            "  d = {:>2}: {:>4}, {:.3e}",
            d,
            service.physical_qubits_per_logical(),
            service.logical_error_rate()
        );
    }
    println!("repetition-code demonstrator (p = 0.05): d -> analytic, monte carlo");
    for d in [1usize, 3, 5, 7] {
        let code = RepetitionCode::new(d);
        println!(
            "  d = {d}: {:.5}, {:.5}",
            code.analytic_logical_error_rate(0.05),
            code.simulate_logical_error_rate(0.05, 100_000, 7)
        );
    }

    println!("\nAll experiments completed.");
}
