//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md §5 (a paper
//! figure, listing, or claim, or one of the ablations). The helpers here
//! build the workloads exactly as the examples do, so benches, examples, and
//! integration tests all measure the same code paths.
//!
//! Printing belongs to the bench/bin targets (they own stdout); the shared
//! helper library itself must stay silent.

#![warn(clippy::print_stdout, clippy::print_stderr)]

use std::collections::BTreeMap;

use qml_core::backends::{AnnealBackend, Backend, ExecutionResult, GateBackend};
use qml_core::graph::{cut_value_of_bitstring, cycle, Graph};
use qml_core::prelude::*;
use qml_core::types::ParamValue;

/// The Listing 4 style gate context: Aer-like engine, hardware basis on a
/// ring, optimization level 2, seeded.
pub fn gate_context(samples: u64, ring: usize) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(42)
            .with_target(Target::ring(ring))
            .with_optimization_level(2),
    )
}

/// The Fig. 3 anneal context: `num_reads` reads, seeded.
pub fn anneal_context(reads: u64) -> ContextDescriptor {
    let mut cfg = AnnealConfig::with_reads(reads);
    cfg.seed = Some(42);
    ContextDescriptor::for_anneal("anneal.neal_simulator", cfg)
}

/// The paper's Max-Cut QAOA job (Fig. 2) at fixed p = 1 angles.
pub fn fig2_job(samples: u64) -> JobBundle {
    qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
        .expect("valid QAOA bundle")
        .with_context(gate_context(samples, 4))
}

/// The paper's Max-Cut annealing job (Fig. 3).
pub fn fig3_job(reads: u64) -> JobBundle {
    maxcut_ising_program(&cycle(4))
        .expect("valid Ising bundle")
        .with_context(anneal_context(reads))
}

/// The Listing 1 QFT job: 10-qubit QFT, 10 000 shots, linear coupling map.
pub fn listing1_job(shots: u64) -> JobBundle {
    qft_program(10, QftParams::default())
        .expect("valid QFT bundle")
        .with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(shots)
                .with_seed(42)
                .with_target(Target::linear(10))
                .with_optimization_level(2),
        ))
}

/// Expected cut of an execution result on a graph.
pub fn expected_cut(graph: &Graph, result: &ExecutionResult) -> f64 {
    result.expectation(|word| cut_value_of_bitstring(graph, word))
}

/// Grid-search the p = 1 QAOA angles for a graph on the gate backend and
/// return `(gamma, beta, expected_cut)` of the best grid point.
pub fn qaoa_grid_search(graph: &Graph, steps: usize, samples: u64) -> (f64, f64, f64) {
    let template = qaoa_maxcut_program(graph, &QaoaSchedule::Symbolic { layers: 1 })
        .expect("valid symbolic QAOA bundle");
    let context = ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(samples)
            .with_seed(42),
    );
    let backend = GateBackend::new();
    let mut best = (0.0, 0.0, f64::MIN);
    for gi in 1..steps {
        for bi in 1..steps {
            let gamma = std::f64::consts::PI * gi as f64 / steps as f64;
            let beta = std::f64::consts::FRAC_PI_2 * bi as f64 / steps as f64;
            let mut bindings = BTreeMap::new();
            bindings.insert("gamma_0".to_string(), ParamValue::Float(gamma));
            bindings.insert("beta_0".to_string(), ParamValue::Float(beta));
            let job = template.bind(&bindings).with_context(context.clone());
            let result = backend.execute(&job).expect("gate execution");
            let value = expected_cut(graph, &result);
            if value > best.2 {
                best = (gamma, beta, value);
            }
        }
    }
    best
}

/// Run a job on the gate backend.
pub fn run_gate(job: &JobBundle) -> ExecutionResult {
    GateBackend::new().execute(job).expect("gate execution")
}

/// Run a job on the annealing backend.
pub fn run_anneal(job: &JobBundle) -> ExecutionResult {
    AnnealBackend::new().execute(job).expect("anneal execution")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_and_fig3_jobs_execute() {
        let graph = cycle(4);
        let gate = run_gate(&fig2_job(512));
        let anneal = run_anneal(&fig3_job(200));
        assert!(expected_cut(&graph, &gate) > 2.0);
        assert!(expected_cut(&graph, &anneal) > 3.0);
    }

    #[test]
    fn listing1_job_executes() {
        let result = run_gate(&listing1_job(256));
        assert_eq!(result.shots, 256);
    }
}
