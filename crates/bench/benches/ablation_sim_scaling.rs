//! A5 (ablation): state-vector scaling — simulator wall-clock vs. width for
//! the QFT workload (kernels switch to rayon parallelism above 2^14
//! amplitudes).

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::sim::{qft_circuit, Simulator};

fn run(width: usize) -> u64 {
    let mut qc = qft_circuit(width, 0, true, false);
    qc.measure_all();
    Simulator::new().run(&qc, 256, 42).counts.values().sum()
}

fn bench(c: &mut Criterion) {
    println!("[sim-scaling] widths 10..=18, 256 shots each (PARALLEL_THRESHOLD = 2^14 amplitudes)");
    let mut group = c.benchmark_group("ablation_sim_scaling");
    group.sample_size(10);
    for width in [10usize, 12, 14, 16, 18] {
        group.bench_function(format!("qft{width}_statevector_256_shots"), |b| {
            b.iter(|| run(width))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
