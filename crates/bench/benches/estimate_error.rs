//! Scheduler *accuracy*, benchmarked alongside throughput: how far the fair
//! scheduler's charged costs sit from measured busy-seconds, cold
//! (descriptor-estimate pricing) versus warm (online cost-model pricing).
//!
//! Two rounds of the same 32-job seeded grid run through one service. Round
//! 1 admits every job at its placement estimate — the gap to measured
//! busy-seconds lands in `SchedulerMetrics::estimate_error_units`. Round 2
//! resubmits the same plan after its outcomes were measured, so admissions
//! charge the EWMA prediction and the per-job error must collapse. Run with:
//! `cargo bench -p qml-bench --bench estimate_error`

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig};

const NODES: usize = 8;
const POINTS: u64 = 32;

fn context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(2048)
            .with_seed(seed)
            .with_target(Target::ring(NODES))
            .with_optimization_level(2),
    )
}

fn template() -> JobBundle {
    qaoa_maxcut_program(
        &qml_core::graph::cycle(NODES),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]),
    )
    .expect("valid QAOA bundle")
}

/// Run two identical rounds through one service; returns the mean absolute
/// estimate error (cost units per job) of each round plus round-2 jobs/s.
fn run_rounds() -> (f64, f64, f64) {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let submit_round = |base: u64| {
        for seed in 0..POINTS {
            service
                .submit("bench", template().with_context(context(base + seed)))
                .expect("job accepted");
        }
    };
    submit_round(0);
    let round1 = service.run_pending();
    assert_eq!(round1.failed, 0);
    let after1 = service.metrics().scheduler;
    let cold = after1.estimate_error_units / after1.cost_samples as f64;

    submit_round(1000);
    let round2 = service.run_pending();
    assert_eq!(round2.failed, 0);
    let total = service.metrics().scheduler;
    let warm = (total.estimate_error_units - after1.estimate_error_units)
        / (total.cost_samples - after1.cost_samples) as f64;
    (cold, warm, round2.jobs_per_second)
}

fn bench(c: &mut Criterion) {
    // Headline numbers outside the harness — these are what BENCH_*.json
    // style scrapes track: scheduler accuracy next to throughput.
    let (cold, warm, jps) = run_rounds();
    println!(
        "[estimate-error] cold (estimate-priced) {cold:.2} cost units/job, \
         warm (model-priced) {warm:.2} units/job, warm throughput {jps:.0} jobs/s",
    );
    println!(
        "[estimate-error] model-priced admissions cut the mean |error| {:.1}x",
        cold / warm.max(1e-9),
    );
    assert!(
        warm < cold,
        "cost-model pricing must beat static estimates (cold {cold:.3}, warm {warm:.3})"
    );

    let mut group = c.benchmark_group("estimate_error");
    group.sample_size(10);
    group.bench_function("two_round_grid32", |b| b.iter(run_rounds));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
