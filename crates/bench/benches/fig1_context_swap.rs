//! E6 (Fig. 1 / §4): architecture claim — the same typed intent re-targets to
//! a different backend by swapping only the context; the runtime's scheduler
//! places each job from its context / cost hints.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{anneal_context, expected_cut, gate_context};
use qml_core::graph::cycle;
use qml_core::prelude::*;

fn run_both() -> (f64, f64) {
    let graph = cycle(4);
    let runtime = Runtime::with_default_backends();
    let gate_id = runtime
        .submit(
            qaoa_maxcut_program(&graph, &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]))
                .unwrap()
                .with_context(gate_context(1024, 4)),
        )
        .unwrap();
    let anneal_id = runtime
        .submit(
            maxcut_ising_program(&graph)
                .unwrap()
                .with_context(anneal_context(500)),
        )
        .unwrap();
    runtime.run_all(2);
    (
        expected_cut(&graph, &runtime.result(gate_id).unwrap()),
        expected_cut(&graph, &runtime.result(anneal_id).unwrap()),
    )
}

fn bench(c: &mut Criterion) {
    let (gate_cut, anneal_cut) = run_both();
    println!("[fig1] same intent, swapped context: gate expected cut = {gate_cut:.2}, anneal expected cut = {anneal_cut:.2}");

    let mut group = c.benchmark_group("fig1_context_swap");
    group.sample_size(10);
    group.bench_function("schedule_and_run_both_paths", |b| b.iter(run_both));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
