//! E3 (§5 claim): with tuned p = 1 angles the gate path's expected cut over
//! all returned bitstrings is ≈ 3.0–3.2, and both backends return the optimal
//! assignments 1010 / 0101 (cut = 4).

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{expected_cut, fig3_job, qaoa_grid_search, run_anneal};
use qml_core::graph::cycle;

fn bench(c: &mut Criterion) {
    let graph = cycle(4);
    let (gamma, beta, best) = qaoa_grid_search(&graph, 16, 2048);
    println!(
        "[claim] best p=1 angles: gamma = {gamma:.3}, beta = {beta:.3} -> expected cut = {best:.2} (paper: ~3.0-3.2)"
    );
    let anneal = run_anneal(&fig3_job(1000));
    println!(
        "[claim] anneal path expected cut = {:.2}, P(optimal) = {:.2}",
        expected_cut(&graph, &anneal),
        anneal.probability("1010") + anneal.probability("0101")
    );

    let mut group = c.benchmark_group("claim_expected_cut");
    group.sample_size(10);
    group.bench_function("qaoa_angle_grid_8x8_512_shots", |b| {
        b.iter(|| qaoa_grid_search(&graph, 8, 512))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
