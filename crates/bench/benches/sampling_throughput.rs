//! Scalar vs vectorized shot sampling on a dense state.
//!
//! The baseline is the pre-vectorization sampler reimplemented verbatim:
//! one linear CDF walk and one freshly rendered bitstring key per shot —
//! O(S · 2ⁿ) walk work and S string allocations. The vectorized path
//! ([`StateVector::sample_counts_with`]) builds the CDF once, draws all
//! shots up front, sorts them, and resolves the batch with a single merge
//! walk — O(2ⁿ + S log S) — rendering each distinct outcome's key once.
//! Both consume one RNG call per shot and resolve a draw to the first
//! basis state whose cumulative mass strictly exceeds it, so for the same
//! seed they must produce identical counts (asserted before timing).
//!
//! Run with: `cargo bench -p qml-bench --bench sampling_throughput`

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qml_core::sim::{qft_circuit, Simulator, StateVector};

/// QFT of |0…0⟩ is a uniform superposition: every basis state carries mass,
/// the worst case for per-shot CDF walks and per-shot key rendering.
const QUBITS: usize = 10;
const SHOTS: u64 = 4096;
const SEED: u64 = 17;

/// The old scalar sampler: per shot, one draw, one linear walk to the first
/// basis state whose cumulative mass exceeds it, one rendered key.
fn scalar_sample(
    sv: &StateVector,
    qubits: &[usize],
    shots: u64,
    rng: &mut StdRng,
) -> BTreeMap<String, u64> {
    let probs = sv.probabilities();
    let total: f64 = probs.iter().sum();
    let mut counts = BTreeMap::new();
    for _ in 0..shots {
        let r = rng.gen::<f64>() * total;
        let mut acc = 0.0f64;
        let mut idx = probs.len() - 1;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if acc > r {
                idx = i;
                break;
            }
        }
        let word: String = qubits
            .iter()
            .map(|&q| if idx & (1 << q) != 0 { '1' } else { '0' })
            .collect();
        *counts.entry(word).or_insert(0u64) += 1;
    }
    counts
}

fn bench(c: &mut Criterion) {
    let sv = Simulator::new().statevector(&qft_circuit(QUBITS, 0, true, false));
    let qubits: Vec<usize> = (0..QUBITS).collect();

    // Same seed ⇒ same RNG stream and resolution rule ⇒ identical counts.
    let scalar = scalar_sample(&sv, &qubits, SHOTS, &mut StdRng::seed_from_u64(SEED));
    let vectorized = sv
        .sample_counts(&qubits, SHOTS, &mut StdRng::seed_from_u64(SEED))
        .expect("QFT state is not degenerate");
    assert_eq!(scalar, vectorized, "samplers must agree bit for bit");

    let mut group = c.benchmark_group("sampling_throughput");
    group.sample_size(20);
    group.bench_function("scalar_10q_4096shots", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| scalar_sample(&sv, &qubits, SHOTS, &mut rng));
    });
    group.bench_function("vectorized_10q_4096shots", |b| {
        // Reused scratch, as the per-worker pool does in production.
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut cdf = Vec::new();
        let mut draws = Vec::new();
        b.iter(|| {
            sv.sample_counts_with(&qubits, SHOTS, &mut rng, &mut cdf, &mut draws)
                .expect("QFT state is not degenerate")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
