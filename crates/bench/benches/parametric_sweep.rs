//! Parametric-sweep throughput: a γ/β binding sweep over ONE symbolic QAOA
//! bundle (late binding against a shared parametric plan) vs the same grid
//! submitted **pre-bound** (every point a distinct program that transpiles
//! from scratch).
//!
//! The program is QAOA p=2 on a 12-node ring transpiled onto a *linear*
//! coupling map, so each transpilation pays for routing, basis lowering, and
//! level-2 optimization — the cost the parametric path amortizes down to one
//! build plus O(#slots) substitutions per point. Run with:
//! `cargo bench -p qml-bench --bench parametric_sweep`

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, ParamValue, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

const NODES: usize = 12;
const LAYERS: usize = 2;
const POINTS: usize = 16;

fn context() -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(32)
            .with_seed(7)
            .with_target(Target::linear(NODES))
            .with_optimization_level(2),
    )
}

fn symbolic_template() -> JobBundle {
    qaoa_maxcut_program(
        &qml_core::graph::cycle(NODES),
        &QaoaSchedule::Symbolic { layers: LAYERS },
    )
    .expect("valid symbolic QAOA bundle")
}

fn grid() -> Vec<BTreeMap<String, ParamValue>> {
    (0..POINTS)
        .map(|i| {
            let mut bindings = BTreeMap::new();
            for layer in 0..LAYERS {
                bindings.insert(
                    format!("gamma_{layer}"),
                    ParamValue::Float(0.1 + 0.05 * i as f64 + 0.2 * layer as f64),
                );
                bindings.insert(
                    format!("beta_{layer}"),
                    ParamValue::Float(0.3 + 0.04 * i as f64 + 0.1 * layer as f64),
                );
            }
            bindings
        })
        .collect()
}

/// Submit + drain the grid as one symbolic sweep with attached binding sets.
fn run_parametric() -> (f64, u64, u64) {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let mut sweep = SweepRequest::new("parametric", symbolic_template()).with_context(context());
    for bindings in grid() {
        sweep = sweep.with_binding_set(bindings);
    }
    service
        .submit_sweep("bench", sweep)
        .expect("sweep accepted");
    let report = service.run_pending();
    assert_eq!(report.failed, 0);
    let stats = service.metrics().gate_cache;
    (report.jobs_per_second, stats.misses, stats.hits)
}

/// Submit + drain the same grid with angles substituted before submission.
fn run_prebound() -> (f64, u64, u64) {
    let service = QmlService::with_config(ServiceConfig::with_workers(2));
    let template = symbolic_template();
    for bindings in grid() {
        service
            .submit("bench", template.bind(&bindings).with_context(context()))
            .expect("job accepted");
    }
    let report = service.run_pending();
    assert_eq!(report.failed, 0);
    let stats = service.metrics().gate_cache;
    (report.jobs_per_second, stats.misses, stats.hits)
}

fn bench(c: &mut Criterion) {
    // Headline numbers outside the harness.
    let (parametric_jps, parametric_misses, parametric_hits) = run_parametric();
    let (prebound_jps, prebound_misses, _) = run_prebound();
    println!(
        "[parametric] {POINTS}-point sweep: late-bound {parametric_jps:.0} jobs/s \
         ({parametric_misses} transpilation, {parametric_hits} plan hits) vs \
         pre-bound {prebound_jps:.0} jobs/s ({prebound_misses} transpilations)",
    );
    println!(
        "[parametric] per-point: late-bound {:.3} ms vs pre-bound {:.3} ms",
        1e3 / parametric_jps,
        1e3 / prebound_jps,
    );
    assert_eq!(
        parametric_misses, 1,
        "a binding sweep must transpile exactly once"
    );
    assert_eq!(parametric_hits as usize, POINTS - 1);
    assert_eq!(
        prebound_misses as usize, POINTS,
        "bind-first transpiles every point"
    );

    let mut group = c.benchmark_group("parametric_sweep");
    group.sample_size(10);
    group.bench_function("grid16_late_bound", |b| b.iter(run_parametric));
    group.bench_function("grid16_pre_bound", |b| b.iter(run_prebound));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
