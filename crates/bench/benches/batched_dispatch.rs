//! Batched vs sequential dispatch of a cold-cache sweep: the same 16-point
//! seeded restart grid drained through the streaming service with
//! micro-batching enabled (`max_batch = 16`, plan-compatible jobs coalesce
//! into device-level `execute_batch` calls) and disabled (`max_batch = 1`,
//! every job dispatches solo).
//!
//! The program is QAOA p=2 on a 12-node ring routed onto a linear coupling
//! map at optimization level 2, so the one realization the batch shares is
//! genuinely expensive. Run with:
//! `cargo bench -p qml-bench --bench batched_dispatch`

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

const NODES: usize = 12;
const LAYERS: usize = 2;
const POINTS: u64 = 16;

fn context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(32)
            .with_seed(seed)
            .with_target(Target::linear(NODES))
            .with_optimization_level(2),
    )
}

fn template() -> JobBundle {
    qaoa_maxcut_program(
        &qml_core::graph::cycle(NODES),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES; LAYERS]),
    )
    .expect("valid QAOA bundle")
}

/// Submit + drain the grid on a fresh (cold-cache) service. Returns
/// jobs/second plus the gate-plan miss count and batches formed.
fn run(max_batch: usize) -> (f64, u64, u64) {
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_max_batch(max_batch));
    let mut sweep = SweepRequest::new("restarts", template());
    for seed in 0..POINTS {
        sweep = sweep.with_context(context(seed));
    }
    service
        .submit_sweep("bench", sweep)
        .expect("sweep accepted");
    let report = service.run_pending();
    assert_eq!(report.failed, 0);
    let metrics = service.metrics();
    (
        report.jobs_per_second,
        metrics.gate_cache.misses,
        metrics.scheduler.batches,
    )
}

fn bench(c: &mut Criterion) {
    // Headline numbers outside the harness.
    let (batched_jps, batched_misses, batches) = run(16);
    let (solo_jps, solo_misses, solo_batches) = run(1);
    println!(
        "[batched] {POINTS}-job cold sweep: batched {batched_jps:.0} jobs/s \
         ({batched_misses} transpilation, {batches} micro-batches) vs \
         sequential {solo_jps:.0} jobs/s ({solo_misses} transpilation, \
         {solo_batches} batches)",
    );
    println!(
        "[batched] per-job: batched {:.3} ms vs sequential {:.3} ms",
        1e3 / batched_jps,
        1e3 / solo_jps,
    );
    assert_eq!(
        batched_misses, 1,
        "a cold-cache batched sweep must transpile exactly once"
    );
    assert!(batches >= 1, "micro-batches must form");
    assert_eq!(solo_batches, 0, "max_batch = 1 disables batching");

    let mut group = c.benchmark_group("batched_dispatch");
    group.sample_size(10);
    group.bench_function("grid16_batched", |b| b.iter(|| run(16)));
    group.bench_function("grid16_sequential", |b| b.iter(|| run(1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
