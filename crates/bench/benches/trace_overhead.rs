//! Stage-tracing overhead on the dispatch-heavy path: the same cold-cache
//! sweep drained with tracing disabled (the `NoopTracer` fast path — a
//! single inlined boolean load per hook, the exact pre-tracing pipeline)
//! and with the bounded ring tracer retaining every stage event.
//!
//! Run with: `cargo bench -p qml-bench --bench trace_overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::{ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

const NODES: usize = 12;
const POINTS: u64 = 16;

fn context(seed: u64) -> ContextDescriptor {
    ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(32)
            .with_seed(seed)
            .with_target(Target::linear(NODES))
            .with_optimization_level(2),
    )
}

fn template() -> JobBundle {
    qaoa_maxcut_program(
        &qml_core::graph::cycle(NODES),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES; 2]),
    )
    .expect("valid QAOA bundle")
}

/// Submit + drain the grid on a fresh service. Returns jobs/second and the
/// number of trace events retained.
fn run(tracing: bool) -> (f64, u64) {
    let service = QmlService::with_config(ServiceConfig::with_workers(2).with_tracing(tracing));
    let mut sweep = SweepRequest::new("restarts", template());
    for seed in 0..POINTS {
        sweep = sweep.with_context(context(seed));
    }
    service
        .submit_sweep("bench", sweep)
        .expect("sweep accepted");
    let report = service.run_pending();
    assert_eq!(report.failed, 0);
    (report.jobs_per_second, service.trace_stats().recorded)
}

fn bench(c: &mut Criterion) {
    // Headline numbers outside the harness. No assert on the ratio: a
    // single-CPU CI box is too noisy for a hard threshold; the committed
    // trajectory artifact (BENCH_dispatch.json) records the measured value.
    let (off_jps, off_events) = run(false);
    let (on_jps, on_events) = run(true);
    println!(
        "[trace] {POINTS}-job cold sweep: tracing off {off_jps:.0} jobs/s \
         ({off_events} events) vs on {on_jps:.0} jobs/s ({on_events} events), \
         overhead {:+.1}%",
        (off_jps - on_jps) / off_jps * 100.0
    );
    assert_eq!(off_events, 0, "NoopTracer must retain nothing");
    assert!(on_events > 0, "ring tracer must retain stage events");

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.bench_function("grid16_tracing_off", |b| b.iter(|| run(false)));
    group.bench_function("grid16_tracing_on", |b| b.iter(|| run(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
