//! E5 (Listings 2–5): descriptor artifacts — construction, JSON
//! serialization, parsing, and validation of the exact forms the paper lists.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::QecConfig;

fn bench(c: &mut Criterion) {
    let bundle = qaoa_maxcut_program(
        &qml_core::graph::cycle(4),
        &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]),
    )
    .unwrap()
    .with_context(
        ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(4096)
                .with_seed(42)
                .with_target(Target::ring(4))
                .with_optimization_level(2),
        )
        .with_qec(QecConfig::surface(7)),
    );
    let json = bundle.to_json().unwrap();
    println!(
        "[descriptors] job.json size = {} bytes, operators = {}",
        json.len(),
        bundle.operators.len()
    );

    let mut group = c.benchmark_group("descriptor_roundtrip");
    group.bench_function("serialize_job_bundle", |b| {
        b.iter(|| bundle.to_json().unwrap())
    });
    group.bench_function("parse_and_validate_job_bundle", |b| {
        b.iter(|| JobBundle::from_json(&json).unwrap())
    });
    group.bench_function("build_qaoa_bundle", |b| {
        b.iter(|| {
            qaoa_maxcut_program(
                &qml_core::graph::cycle(4),
                &QaoaSchedule::Fixed(vec![RING_P1_ANGLES]),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
