//! E1 (Fig. 2): the Max-Cut QAOA gate path — descriptor stack → ring-coupled
//! transpilation → state-vector sampling → schema decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{expected_cut, fig2_job, run_gate};
use qml_core::graph::cycle;

fn bench(c: &mut Criterion) {
    let graph = cycle(4);
    let job = fig2_job(4096);
    let result = run_gate(&job);
    println!(
        "[fig2] engine = {}, shots = {}",
        result.engine, result.shots
    );
    println!(
        "[fig2] P(1010) = {:.3}, P(0101) = {:.3}, expected cut = {:.2} (paper: optimal cuts 1010/0101, expected cut ~3.0-3.2 with tuned angles)",
        result.probability("1010"),
        result.probability("0101"),
        expected_cut(&graph, &result)
    );
    let metrics = result.gate_metrics.unwrap();
    println!(
        "[fig2] transpiled: {} gates, {} two-qubit, depth {}",
        metrics.total_gates, metrics.two_qubit_gates, metrics.depth
    );

    let mut group = c.benchmark_group("fig2_qaoa_gate_path");
    group.sample_size(20);
    group.bench_function("qaoa_c4_4096_shots", |b| b.iter(|| run_gate(&job)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
