//! Service throughput: jobs/sec for a 64-job mixed gate+anneal sweep through
//! `qml-service`, cold transpilation cache vs warm.
//!
//! The gate half is the Listing-1 QFT(10) on a linear-coupled target — a
//! routing-heavy transpilation that the warm cache skips entirely. The anneal
//! half is the Fig. 3 Max-Cut problem under varying read counts, whose BQM
//! lowering is likewise cached. Run with:
//! `cargo bench -p qml-bench --bench service_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::prelude::*;
use qml_core::types::{AnnealConfig, ContextDescriptor, ExecConfig, Target};
use qml_service::{QmlService, ServiceConfig, SweepRequest};

const GATE_JOBS: u64 = 32;
const ANNEAL_JOBS: u64 = 32;

/// 32 *distinct* QFT(10) programs (approximation degree x swaps x inverse),
/// each a separate transpilation on the linear target. A cold drain builds
/// all 32 plans; re-submitting the sweep hits every one of them.
fn gate_sweeps() -> Vec<SweepRequest> {
    let mut sweeps = Vec::new();
    let mut variant = 0u64;
    for approx in 0..8usize {
        for (do_swaps, inverse) in [(true, false), (false, false), (true, true), (false, true)] {
            let params = QftParams {
                approx_degree: approx,
                do_swaps,
                inverse,
            };
            let program = qft_program(10, params).expect("valid QFT bundle");
            let sweep = SweepRequest::new(format!("qft10-v{variant}"), program).with_context(
                ContextDescriptor::for_gate(
                    ExecConfig::new("gate.aer_simulator")
                        .with_samples(64)
                        .with_seed(variant)
                        .with_target(Target::linear(10))
                        .with_optimization_level(2),
                ),
            );
            sweeps.push(sweep);
            variant += 1;
        }
    }
    assert_eq!(sweeps.len() as u64, GATE_JOBS);
    sweeps
}

fn anneal_sweep() -> SweepRequest {
    let program = maxcut_ising_program(&qml_core::graph::cycle(4)).expect("valid Ising bundle");
    let mut sweep = SweepRequest::new("maxcut-reads", program);
    for i in 0..ANNEAL_JOBS {
        let mut cfg = AnnealConfig::with_reads(100 + 10 * i);
        cfg.seed = Some(i);
        sweep = sweep.with_context(ContextDescriptor::for_anneal("anneal.neal_simulator", cfg));
    }
    sweep
}

fn submit_and_drain(service: &QmlService) -> f64 {
    for sweep in gate_sweeps() {
        service
            .submit_sweep("bench", sweep)
            .expect("gate sweep accepted");
    }
    service
        .submit_sweep("bench", anneal_sweep())
        .expect("anneal sweep accepted");
    let report = service.run_pending();
    assert_eq!(report.jobs as u64, GATE_JOBS + ANNEAL_JOBS);
    assert_eq!(report.failed, 0);
    report.jobs_per_second
}

fn bench(c: &mut Criterion) {
    let workers = ServiceConfig::default().workers;

    // Headline numbers outside the harness: one cold drain, one warm drain.
    let service = QmlService::new();
    let cold_jps = submit_and_drain(&service);
    let cold_misses = service.metrics().cache.misses;
    let warm_jps = submit_and_drain(&service);
    let warm = service.metrics();
    println!(
        "[service] {} jobs on {workers} workers | cold: {cold_jps:.0} jobs/s ({cold_misses} plans built) | warm: {warm_jps:.0} jobs/s ({} cache hits, hit rate {:.2})",
        GATE_JOBS + ANNEAL_JOBS,
        warm.cache.hits,
        warm.cache.hit_rate(),
    );
    println!(
        "[service] per-job: cold {:.3} ms vs warm {:.3} ms",
        1e3 / cold_jps,
        1e3 / warm_jps,
    );
    assert!(warm.cache.hits > 0, "warm sweep must hit the cache");
    assert!(
        warm_jps > cold_jps,
        "warm-cache throughput must beat cold ({warm_jps:.0} vs {cold_jps:.0} jobs/s)"
    );

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.bench_function("sweep64_cold_cache", |b| {
        b.iter(|| {
            let service = QmlService::new();
            submit_and_drain(&service)
        })
    });
    let warm_service = QmlService::new();
    submit_and_drain(&warm_service); // prime the cache
    group.bench_function("sweep64_warm_cache", |b| {
        b.iter(|| submit_and_drain(&warm_service))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
