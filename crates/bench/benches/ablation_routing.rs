//! A4 (ablation): routing overhead — two-qubit gate count and depth of the
//! QFT(10) and QAOA(C4) workloads on all-to-all vs. linear vs. ring coupling
//! maps (the context's `target` block is the only thing that changes).

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::backends::{Backend, GateBackend};
use qml_core::graph::cycle;
use qml_core::prelude::*;

fn exec(bundle: JobBundle, target: Option<Target>) -> (usize, usize, usize) {
    let mut exec = ExecConfig::new("gate.aer_simulator")
        .with_samples(128)
        .with_seed(42)
        .with_optimization_level(2);
    if let Some(t) = target {
        exec = exec.with_target(t);
    }
    let result = GateBackend::new()
        .execute(&bundle.with_context(ContextDescriptor::for_gate(exec)))
        .unwrap();
    let m = result.gate_metrics.unwrap();
    (m.two_qubit_gates, m.depth, m.swaps_inserted)
}

fn bench(c: &mut Criterion) {
    let qft = || qft_program(10, QftParams::default()).unwrap();
    let qaoa =
        || qaoa_maxcut_program(&cycle(4), &QaoaSchedule::Fixed(vec![RING_P1_ANGLES])).unwrap();
    println!("[routing] workload, topology -> (twoq, depth, swaps)");
    for (name, target) in [
        ("all-to-all", None),
        ("linear", Some(Target::linear(10))),
        ("ring", Some(Target::ring(10))),
    ] {
        println!(
            "[routing]   QFT(10), {name:>10} -> {:?}",
            exec(qft(), target.clone())
        );
    }
    for (name, target) in [
        ("all-to-all", None),
        ("linear", Some(Target::linear(4))),
        ("ring", Some(Target::ring(4))),
    ] {
        println!(
            "[routing]   QAOA(C4), {name:>10} -> {:?}",
            exec(qaoa(), target.clone())
        );
    }

    let mut group = c.benchmark_group("ablation_routing");
    group.sample_size(10);
    group.bench_function("qft10_all_to_all", |b| b.iter(|| exec(qft(), None)));
    group.bench_function("qft10_linear", |b| {
        b.iter(|| exec(qft(), Some(Target::linear(10))))
    });
    group.bench_function("qft10_ring", |b| {
        b.iter(|| exec(qft(), Some(Target::ring(10))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
