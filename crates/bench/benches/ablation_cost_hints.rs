//! A1 (ablation): cost-hint accuracy — descriptor-level cost hints vs. the
//! transpiled reality across QFT widths and optimization levels (the paper's
//! Listing 3 quotes "roughly 45 two-qubit gates and depth near 100" for the
//! 10-qubit QFT).

use criterion::{criterion_group, criterion_main, Criterion};
use qml_core::backends::{Backend, GateBackend};
use qml_core::prelude::*;

fn run(width: usize, level: u8) -> (u64, u64, usize, usize) {
    let bundle = qft_program(width, QftParams::default()).unwrap();
    let hint = bundle.operators[0].cost_hint.unwrap();
    let job = bundle.with_context(ContextDescriptor::for_gate(
        ExecConfig::new("gate.aer_simulator")
            .with_samples(128)
            .with_seed(42)
            .with_target(Target::linear(width))
            .with_optimization_level(level),
    ));
    let result = GateBackend::new().execute(&job).unwrap();
    let metrics = result.gate_metrics.unwrap();
    (
        hint.twoq.unwrap_or(0),
        hint.depth.unwrap_or(0),
        metrics.two_qubit_gates,
        metrics.depth,
    )
}

fn bench(c: &mut Criterion) {
    println!("[cost-hints] width, opt-level -> hint(twoq, depth) vs realized(twoq, depth)");
    for width in [4usize, 6, 8, 10, 12] {
        for level in [0u8, 2] {
            let (h2, hd, r2, rd) = run(width, level);
            println!("[cost-hints]   n = {width:>2}, O{level}: hint = ({h2:>4}, {hd:>4}), realized = ({r2:>4}, {rd:>4})");
        }
    }

    let mut group = c.benchmark_group("ablation_cost_hints");
    group.sample_size(10);
    for level in [0u8, 1, 2, 3] {
        group.bench_function(format!("qft10_linear_O{level}"), |b| {
            b.iter(|| run(10, level))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
