//! E2 (Fig. 3): the Max-Cut annealing path — single ISING_PROBLEM descriptor
//! → BQM → Metropolis simulated annealing → schema decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{expected_cut, fig3_job, run_anneal};
use qml_core::graph::cycle;

fn bench(c: &mut Criterion) {
    let graph = cycle(4);
    let job = fig3_job(1000);
    let result = run_anneal(&job);
    let stats = result.energy_stats.unwrap();
    println!(
        "[fig3] reads = {}, lowest energy = {}, ground-state probability = {:.2}",
        result.shots, stats.min_energy, stats.ground_state_probability
    );
    println!(
        "[fig3] P(1010) = {:.3}, P(0101) = {:.3}, expected cut = {:.2} (paper: both backends return 1010/0101, cut = 4)",
        result.probability("1010"),
        result.probability("0101"),
        expected_cut(&graph, &result)
    );

    let mut group = c.benchmark_group("fig3_anneal_path");
    group.sample_size(20);
    group.bench_function("ising_c4_1000_reads", |b| b.iter(|| run_anneal(&job)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
