//! A3 (ablation): annealer schedule sweep — solution quality vs. num_reads
//! and sweeps on the paper's C4 instance and a larger random graph.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{expected_cut, run_anneal};
use qml_core::graph::{brute_force, cycle, random_gnp, Graph};
use qml_core::prelude::*;

fn job(graph: &Graph, reads: u64, sweeps: u64) -> JobBundle {
    let mut cfg = AnnealConfig::with_reads(reads);
    cfg.num_sweeps = Some(sweeps);
    cfg.seed = Some(42);
    maxcut_ising_program(graph)
        .unwrap()
        .with_context(ContextDescriptor::for_anneal("anneal.neal_simulator", cfg))
}

fn bench(c: &mut Criterion) {
    let instances: Vec<(&str, Graph)> =
        vec![("C4", cycle(4)), ("G(12,0.3)", random_gnp(12, 0.3, 9))];
    println!("[anneal] graph, reads, sweeps -> expected cut (optimum), ground-state probability");
    for (name, graph) in &instances {
        let optimum = brute_force(graph).value;
        for &reads in &[10u64, 100, 1000] {
            for &sweeps in &[10u64, 100, 1000] {
                let result = run_anneal(&job(graph, reads, sweeps));
                let stats = result.energy_stats.unwrap();
                println!(
                    "[anneal]   {name:>9}, reads = {reads:>4}, sweeps = {sweeps:>4}: cut = {:.2} (opt {optimum:.1}), P(ground) = {:.2}",
                    expected_cut(graph, &result),
                    stats.ground_state_probability
                );
            }
        }
    }

    let mut group = c.benchmark_group("ablation_anneal_schedule");
    group.sample_size(10);
    let graph = random_gnp(12, 0.3, 9);
    for &sweeps in &[10u64, 100, 1000] {
        group.bench_function(format!("g12_100_reads_{sweeps}_sweeps"), |b| {
            b.iter(|| run_anneal(&job(&graph, 100, sweeps)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
