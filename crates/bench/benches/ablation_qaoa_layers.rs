//! A2 (ablation): QAOA depth/quality sweep — expected cut vs. number of
//! layers p on several graph families, against the classical baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{expected_cut, gate_context, run_gate};
use qml_core::graph::{brute_force, complete, cycle, random_gnp, Graph};
use qml_core::prelude::*;

fn run_qaoa(graph: &Graph, layers: usize, samples: u64) -> f64 {
    let schedule = QaoaSchedule::Fixed(vec![RING_P1_ANGLES; layers]);
    let job = qaoa_maxcut_program(graph, &schedule)
        .unwrap()
        .with_context(gate_context(samples, graph.num_nodes()));
    expected_cut(graph, &run_gate(&job))
}

fn bench(c: &mut Criterion) {
    let instances: Vec<(&str, Graph)> = vec![
        ("C4", cycle(4)),
        ("C6", cycle(6)),
        ("K4", complete(4)),
        ("G(8,0.5)", random_gnp(8, 0.5, 7)),
    ];
    println!("[qaoa-layers] graph: optimum | expected cut at p = 1..3 (fixed ring angles)");
    for (name, graph) in &instances {
        let optimum = brute_force(graph).value;
        let cuts: Vec<String> = (1..=3)
            .map(|p| format!("{:.2}", run_qaoa(graph, p, 1024)))
            .collect();
        println!(
            "[qaoa-layers]   {name:>9}: opt = {optimum:.1} | {}",
            cuts.join(", ")
        );
    }

    let mut group = c.benchmark_group("ablation_qaoa_layers");
    group.sample_size(10);
    for p in 1..=3usize {
        let graph = cycle(6);
        group.bench_function(format!("c6_p{p}_1024_shots"), |b| {
            b.iter(|| run_qaoa(&graph, p, 1024))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
