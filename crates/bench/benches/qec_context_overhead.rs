//! E7 (Listing 5 / §4.3.2): the QEC context changes resource estimates, not
//! semantics. Reports physical-qubit and syndrome-round overhead per distance
//! and benchmarks the orthogonal QEC service plus the repetition-code
//! Monte-Carlo demonstrator.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{fig2_job, run_gate};
use qml_core::qec::{QecService, RepetitionCode};
use qml_core::types::QecConfig;

fn bench(c: &mut Criterion) {
    println!("[qec] distance -> physical qubits/logical, logical error rate (p = 1e-3)");
    for d in [3usize, 5, 7, 9, 11] {
        let service = QecService::from_config(&QecConfig::surface(d)).unwrap();
        println!(
            "[qec]   d = {:>2}: {:>4} physical/logical, p_L = {:.3e}",
            d,
            service.physical_qubits_per_logical(),
            service.logical_error_rate()
        );
    }
    let base = run_gate(&fig2_job(1024));
    let with_qec = run_gate(&{
        let job = fig2_job(1024);
        let ctx = job.context.clone().unwrap().with_qec(QecConfig::surface(7));
        job.with_context(ctx)
    });
    println!(
        "[qec] counts unchanged by QEC context: {} (estimate: {} physical qubits)",
        base.counts == with_qec.counts,
        with_qec.qec_estimate.unwrap().physical_qubits
    );

    let mut group = c.benchmark_group("qec_context_overhead");
    group.sample_size(10);
    group.bench_function("gate_path_with_qec_context", |b| {
        b.iter(|| {
            let job = fig2_job(1024);
            let ctx = job.context.clone().unwrap().with_qec(QecConfig::surface(7));
            run_gate(&job.with_context(ctx))
        })
    });
    group.bench_function("repetition_code_mc_10k_trials_d7", |b| {
        b.iter(|| RepetitionCode::new(7).simulate_logical_error_rate(0.05, 10_000, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
