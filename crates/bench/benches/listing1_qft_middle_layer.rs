//! E4 (Listing 1 / §2): the 10-qubit QFT motivational example expressed
//! through the middle layer — 10 000 shots, basis [sx, rz, cx], linear
//! coupling map, optimization level 2.

use criterion::{criterion_group, criterion_main, Criterion};
use qml_bench::{listing1_job, run_gate};

fn bench(c: &mut Criterion) {
    let job = listing1_job(10_000);
    let result = run_gate(&job);
    let metrics = result.gate_metrics.unwrap();
    println!(
        "[listing1] shots = {}, distinct outcomes = {}, transpiled twoq = {}, depth = {}, swaps = {}",
        result.shots,
        result.counts.len(),
        metrics.two_qubit_gates,
        metrics.depth,
        metrics.swaps_inserted
    );
    println!("[listing1] descriptor cost hint: twoq ~ 45 controlled phases (paper Listing 3: twoq 45, depth 100)");

    let mut group = c.benchmark_group("listing1_qft_middle_layer");
    group.sample_size(10);
    group.bench_function("qft10_linear_10000_shots", |b| b.iter(|| run_gate(&job)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
