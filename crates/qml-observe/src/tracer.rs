//! Per-job stage-event tracing: the [`Tracer`] trait, the zero-cost
//! [`NoopTracer`], and the bounded [`RingTracer`] ring buffer.
//!
//! Every layer of the serving stack owns one measurement about a job's life:
//! the service knows when it was submitted, the scheduler what its admission
//! was charged and how long it queued, the backend whether its plan came from
//! the cache, the pool how long it really ran. A [`TraceEvent`] records each
//! of those moments with one shared monotone clock (the tracer's epoch), so
//! a drained trace reconstructs every job's full timeline:
//!
//! ```text
//! submitted → admitted → dispatched → [plan] → bound → executed → outcome
//! ```
//!
//! (`plan` is present when the executing backend reports per-member plan
//! attribution — the built-in batch paths do; opaque third-party backends
//! may not.)
//!
//! [`RingTracer`] writers never contend on a global lock: a slot is reserved
//! with one atomic `fetch_add` and filled under that slot's own mutex, so
//! concurrent recorders only collide when the buffer has wrapped a full lap
//! onto the same slot. When the buffer overflows, the *oldest* events are
//! overwritten and counted in [`TraceStats::dropped`] — tracing degrades by
//! forgetting history, never by blocking the hot path or growing without
//! bound.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default [`RingTracer`] capacity: roomy enough that a full streaming run
/// of several thousand jobs (7 events each) drains loss-free, small enough
/// (~1 MiB of slots) to leave always-on in a service.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One lifecycle stage of a job, with the measurement the recording layer
/// owns. Stages are ordered; see [`Stage::order`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// The service accepted the job (validated, placed, bookkept).
    Submitted,
    /// The fair scheduler admitted the job to its tenant queue.
    Admitted {
        /// Cost charged against the tenant's DRR deficit, in cost units.
        cost: f64,
    },
    /// The scheduler handed the job to a pool worker.
    Dispatched {
        /// Submit→dispatch queue wait, in microseconds.
        queue_wait_us: u64,
        /// Members in the dispatch (1 = solo, ≥ 2 = micro-batch).
        batch_size: u32,
        /// Deficit spent on this member at dispatch, in cost units.
        deficit_spent: f64,
    },
    /// The backend resolved the job's realization plan.
    Plan {
        /// True if the plan came from the transpilation/lowering cache.
        cache_hit: bool,
        /// This job's attributed share of plan realization time, in
        /// microseconds (≈ 0 on a cache hit).
        realize_us: u64,
    },
    /// The realized plan was bound to the job's late parameters/policy.
    Bound,
    /// Execution finished on the backend.
    Executed {
        /// Measured busy wall-clock attributed to this job, in microseconds.
        measured_us: u64,
    },
    /// The outcome was folded into service metrics and fairness accounting.
    Outcome {
        /// True if the job completed successfully.
        ok: bool,
    },
    /// A device fault closed this attempt and the job was re-admitted with
    /// the failed device excluded. Like [`Stage::Outcome`], this closes an
    /// attempt — the requeued job repeats `admitted → dispatched → …` on
    /// another device.
    Requeued {
        /// How many attempts the job has consumed so far (1 = first retry).
        attempt: u32,
    },
}

impl Stage {
    /// The stage's lowercase schema name (stable; greppable in dumps).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Admitted { .. } => "admitted",
            Stage::Dispatched { .. } => "dispatched",
            Stage::Plan { .. } => "plan",
            Stage::Bound => "bound",
            Stage::Executed { .. } => "executed",
            Stage::Outcome { .. } => "outcome",
            Stage::Requeued { .. } => "requeued",
        }
    }

    /// Position in the canonical lifecycle (0 = submitted … 6 = outcome).
    /// A job's drained events, sorted by this, must carry non-decreasing
    /// timestamps — the invariant the trace-completeness tests assert.
    pub fn order(&self) -> u8 {
        match self {
            Stage::Submitted => 0,
            Stage::Admitted { .. } => 1,
            Stage::Dispatched { .. } => 2,
            Stage::Plan { .. } => 3,
            Stage::Bound => 4,
            Stage::Executed { .. } => 5,
            Stage::Outcome { .. } => 6,
            Stage::Requeued { .. } => 6,
        }
    }
}

/// One recorded stage event. Timestamps are microseconds since the tracer's
/// epoch, taken from one monotone clock, so events of one job (which are
/// causally ordered across threads) always carry non-decreasing `at_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global publish order (dense; assigned by the tracer).
    pub seq: u64,
    /// Microseconds since the tracer's epoch.
    pub at_us: u64,
    /// The job this event belongs to (`JobId.0` at the service layer).
    pub job: u64,
    /// Owning tenant, when the recording layer knows it (the runtime and
    /// backends are tenant-blind; scheduler and service events carry it).
    pub tenant: Option<Arc<str>>,
    /// The job's device-level plan/batch key, when known.
    pub plan_key: Option<u64>,
    /// The lifecycle stage and its measurement.
    pub stage: Stage,
}

impl fmt::Display for TraceEvent {
    /// Greppable `key=value` rendering, one event per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace seq={} at_us={} job={} stage={}",
            self.seq,
            self.at_us,
            self.job,
            self.stage.name()
        )?;
        if let Some(tenant) = &self.tenant {
            write!(f, " tenant={tenant}")?;
        }
        if let Some(key) = self.plan_key {
            write!(f, " plan_key={key:016x}")?;
        }
        match self.stage {
            Stage::Admitted { cost } => write!(f, " cost={cost:.3}"),
            Stage::Dispatched {
                queue_wait_us,
                batch_size,
                deficit_spent,
            } => write!(
                f,
                " queue_wait_us={queue_wait_us} batch_size={batch_size} deficit_spent={deficit_spent:.3}"
            ),
            Stage::Plan {
                cache_hit,
                realize_us,
            } => write!(f, " cache_hit={cache_hit} realize_us={realize_us}"),
            Stage::Executed { measured_us } => write!(f, " measured_us={measured_us}"),
            Stage::Outcome { ok } => write!(f, " ok={ok}"),
            Stage::Requeued { attempt } => write!(f, " attempt={attempt}"),
            Stage::Submitted | Stage::Bound => Ok(()),
        }
    }
}

/// Counters describing a tracer's buffer health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Events recorded since creation (dropped ones included).
    pub recorded: u64,
    /// Events overwritten before being drained (0 = the buffer kept up).
    pub dropped: u64,
    /// Ring capacity in events (0 for [`NoopTracer`]).
    pub capacity: usize,
}

/// The stage-event sink threaded through runtime, scheduler, and service.
///
/// Implementations must be cheap and non-blocking: `record` runs under the
/// scheduler lock and on pool workers' hot paths. Call sites guard any
/// expensive argument computation behind [`Tracer::enabled`] so the
/// [`NoopTracer`] default costs one virtual call and a branch.
pub trait Tracer: Send + Sync + fmt::Debug {
    /// True if recorded events are retained (callers skip argument
    /// preparation when false).
    fn enabled(&self) -> bool;

    /// Record one stage event for `job`. The tracer stamps sequence number
    /// and timestamp.
    fn record(&self, job: u64, tenant: Option<&Arc<str>>, plan_key: Option<u64>, stage: Stage);

    /// Buffer-health counters.
    fn stats(&self) -> TraceStats;

    /// Remove and return all retained events, sorted by publish order.
    fn drain(&self) -> Vec<TraceEvent>;
}

/// The zero-cost default: records nothing, retains nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _job: u64, _tenant: Option<&Arc<str>>, _plan_key: Option<u64>, _stage: Stage) {
    }

    fn stats(&self) -> TraceStats {
        TraceStats::default()
    }

    fn drain(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// A bounded ring-buffer tracer. Writers reserve a slot with one atomic
/// `fetch_add` (no global lock, no allocation beyond the event itself) and
/// publish under that slot's own mutex; overwriting an undrained event
/// increments [`TraceStats::dropped`]. See the module docs.
#[derive(Debug)]
pub struct RingTracer {
    /// One shared epoch: every event's `at_us` is measured against this
    /// instant, which is what makes cross-thread timestamps comparable.
    epoch: Instant,
    slots: Box<[Mutex<Option<TraceEvent>>]>,
    /// Next sequence number; `seq % capacity` is the slot index.
    head: AtomicU64,
    dropped: AtomicU64,
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::new()
    }
}

impl RingTracer {
    /// A tracer with [`DEFAULT_TRACE_CAPACITY`] event slots.
    pub fn new() -> Self {
        RingTracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer retaining up to `capacity` events (values of 0 are treated
    /// as 1). Once full, new events overwrite the oldest undrained ones.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingTracer {
            epoch: Instant::now(),
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, job: u64, tenant: Option<&Arc<str>>, plan_key: Option<u64>, stage: Stage) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let event = TraceEvent {
            seq,
            at_us,
            job,
            tenant: tenant.cloned(),
            plan_key,
            stage,
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        if slot.lock().replace(event).is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> TraceStats {
        TraceStats {
            recorded: self.head.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            capacity: self.slots.len(),
        }
    }

    fn drain(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().take())
            .collect();
        events.sort_by_key(|event| event.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_retains_nothing() {
        let tracer = NoopTracer;
        assert!(!tracer.enabled());
        tracer.record(1, None, None, Stage::Submitted);
        assert_eq!(tracer.stats(), TraceStats::default());
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn ring_tracer_records_in_order_with_monotone_timestamps() {
        let tracer = RingTracer::with_capacity(16);
        let tenant: Arc<str> = Arc::from("alice");
        tracer.record(7, Some(&tenant), Some(42), Stage::Submitted);
        tracer.record(7, Some(&tenant), Some(42), Stage::Admitted { cost: 2.5 });
        tracer.record(
            7,
            Some(&tenant),
            Some(42),
            Stage::Dispatched {
                queue_wait_us: 120,
                batch_size: 1,
                deficit_spent: 2.5,
            },
        );
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].at_us <= pair[1].at_us, "timestamps not monotone");
            assert!(pair[0].stage.order() < pair[1].stage.order());
        }
        assert_eq!(events[0].tenant.as_deref(), Some("alice"));
        assert_eq!(events[0].plan_key, Some(42));
        // Drained events are gone; counters survive.
        assert!(tracer.drain().is_empty());
        assert_eq!(tracer.stats().recorded, 3);
        assert_eq!(tracer.stats().dropped, 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let tracer = RingTracer::with_capacity(4);
        for job in 0..10u64 {
            tracer.record(job, None, None, Stage::Submitted);
        }
        let stats = tracer.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.dropped, 6);
        let events = tracer.drain();
        assert_eq!(events.len(), 4);
        // The survivors are the newest four, in publish order.
        let jobs: Vec<u64> = events.iter().map(|e| e.job).collect();
        assert_eq!(jobs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let tracer = Arc::new(RingTracer::with_capacity(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        tracer.record(t * 1000 + i, None, None, Stage::Bound);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let stats = tracer.stats();
        assert_eq!(stats.recorded, 1024);
        assert_eq!(stats.dropped, 0);
        let events = tracer.drain();
        assert_eq!(events.len(), 1024);
        // Sequence numbers are dense and unique.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn display_is_greppable_key_value() {
        let event = TraceEvent {
            seq: 3,
            at_us: 1500,
            job: 9,
            tenant: Some(Arc::from("bob")),
            plan_key: Some(0xabcd),
            stage: Stage::Dispatched {
                queue_wait_us: 42,
                batch_size: 4,
                deficit_spent: 1.0,
            },
        };
        let line = event.to_string();
        assert!(line.contains("stage=dispatched"));
        assert!(line.contains("tenant=bob"));
        assert!(line.contains("queue_wait_us=42"));
        assert!(line.contains("batch_size=4"));
    }
}
