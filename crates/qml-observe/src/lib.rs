//! # qml-observe — job-lifecycle tracing and latency histograms
//!
//! The serving stack (runtime → scheduler → backends → service) needs a way
//! to *see* itself: which job waited how long, whether its plan came from the
//! cache, what a dispatch actually cost. This crate is the dependency-light
//! substrate the upper layers report through:
//!
//! * [`Tracer`] — the per-job stage-event sink. Two implementations:
//!   [`NoopTracer`] (the zero-cost default — every call site guards hot-path
//!   work behind [`Tracer::enabled`]) and [`RingTracer`], a bounded ring
//!   buffer whose writers reserve slots with one atomic `fetch_add` and never
//!   contend on a global lock. Events carry monotone microsecond timestamps
//!   (one shared epoch per tracer) plus job/tenant/plan-key attribution.
//! * [`Stage`] / [`TraceEvent`] — the structured per-job lifecycle schema:
//!   `submitted → admitted → dispatched → [plan] → bound → executed →
//!   outcome`, each stage carrying the measurement that layer owns (charged
//!   cost, queue wait, batch size, cache hit, realization time, measured
//!   execution time).
//! * [`Histogram`] — a dependency-free log-bucketed latency histogram
//!   (≤ 12.5 % relative error, saturating counters, mergeable) with
//!   nearest-rank [`Histogram::percentile`]s, plus [`HistogramSet`], a keyed
//!   family of histograms (per tenant, per backend) safe to feed from many
//!   threads.
//!
//! The crate deliberately knows nothing about the runtime's `JobId` or the
//! service's tenant table: jobs are raw `u64`s and tenants are shared
//! `Arc<str>`s, so every layer of the stack can depend on this one without
//! cycles. The service folds these primitives (plus its own metric surfaces)
//! into one versioned `ObservabilitySnapshot` — see `qml-service`.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod tracer;

pub use histogram::{Histogram, HistogramSet, HistogramSnapshot};
pub use tracer::{
    NoopTracer, RingTracer, Stage, TraceEvent, TraceStats, Tracer, DEFAULT_TRACE_CAPACITY,
};
