//! A dependency-free log-bucketed histogram for latency percentiles.
//!
//! Latency distributions are heavy-tailed, so fixed-width buckets waste
//! resolution where it matters (the fast path) and run out of range where it
//! hurts (the tail). The classic answer — used by HDR-style recorders — is
//! logarithmic bucketing with a few linear sub-buckets per octave: bucket
//! width grows with magnitude, keeping *relative* error bounded across the
//! whole `u64` range at a fixed, small memory cost.
//!
//! This implementation uses [`SUB_BUCKETS`] (8) sub-buckets per octave, so a
//! reported percentile overstates the true sample by at most `1/8 = 12.5 %`
//! (values below [`LINEAR_MAX`] are exact). Counters saturate instead of
//! wrapping, histograms [`merge`](Histogram::merge) element-wise, and
//! [`percentile`](Histogram::percentile) is nearest-rank over the cumulative
//! counts — the bucket containing the rank-th smallest sample is found
//! exactly; only the position *within* that bucket is approximated.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;

/// Linear sub-buckets per octave: each bucket spans `1/SUB_BUCKETS` of its
/// octave, bounding relative error at `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Values below this are recorded exactly (one bucket per value).
pub const LINEAR_MAX: u64 = SUB_BUCKETS * 2;

/// Total bucket count covering the whole `u64` range: `LINEAR_MAX` exact
/// buckets plus `SUB_BUCKETS` per octave for octaves `SUB_BITS+1 ..= 63`.
const BUCKETS: usize = (LINEAR_MAX + (64 - SUB_BITS as u64 - 1) * SUB_BUCKETS) as usize;

/// Bucket index of a value (monotone non-decreasing in the value).
fn index_of(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    ((exp - SUB_BITS) as usize) * SUB_BUCKETS as usize + SUB_BUCKETS as usize + mantissa
}

/// Largest value mapping into bucket `index` — what percentiles report, so
/// the approximation always errs on the safe (pessimistic) side.
fn upper_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let exp = SUB_BITS + ((index as u64 - SUB_BUCKETS) >> SUB_BITS) as u32;
    let mantissa = (index as u64 - SUB_BUCKETS) & (SUB_BUCKETS - 1);
    let width = 1u64 << (exp - SUB_BITS);
    let low = (SUB_BUCKETS + mantissa) << (exp - SUB_BITS);
    low + (width - 1)
}

/// A mergeable log-bucketed histogram over `u64` samples (typically
/// microseconds), with ≤ `1/SUB_BUCKETS` relative percentile error and
/// saturating counters. See the module docs for the bucketing scheme.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its fixed bucket array).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample. Counters saturate at `u64::MAX` instead of
    /// wrapping, so a pathological recorder degrades percentile precision
    /// rather than corrupting it.
    pub fn record(&mut self, value: u64) {
        let bucket = &mut self.counts[index_of(value)];
        *bucket = bucket.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value as u128);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`): an upper bound for the
    /// `⌈q·count⌉`-th smallest sample, exact for values below
    /// [`LINEAR_MAX`] and within `1/SUB_BUCKETS` relative error above it
    /// (clamped to the observed maximum). Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one, element-wise and saturating —
    /// per-worker or per-shard recorders aggregate losslessly (up to the
    /// shared bucket resolution).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The serializable percentile summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max,
            mean: self.mean(),
        }
    }
}

/// A point-in-time percentile summary of one [`Histogram`], in the
/// histogram's sample unit (microseconds everywhere in this workspace).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median (see [`Histogram::percentile`] for the error bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Mean of recorded samples.
    pub mean: f64,
}

/// A thread-safe, lazily keyed family of histograms — one per tenant, per
/// backend, per whatever the caller keys by. Feeding takes one short mutex
/// hold (the histograms live in a `BTreeMap` so snapshots come out in stable
/// order).
#[derive(Debug, Default)]
pub struct HistogramSet {
    inner: Mutex<BTreeMap<String, Histogram>>,
}

impl HistogramSet {
    /// An empty set.
    pub fn new() -> Self {
        HistogramSet::default()
    }

    /// Record `value` under `key`, creating the histogram on first sight.
    pub fn observe(&self, key: &str, value: u64) {
        let mut inner = self.inner.lock();
        match inner.get_mut(key) {
            Some(histogram) => histogram.record(value),
            None => {
                let mut histogram = Histogram::new();
                histogram.record(value);
                inner.insert(key.to_string(), histogram);
            }
        }
    }

    /// Percentile summaries of every keyed histogram, in key order.
    pub fn snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.inner
            .lock()
            .iter()
            .map(|(key, histogram)| (key.clone(), histogram.snapshot()))
            .collect()
    }

    /// All keyed histograms merged into one (e.g. the all-tenants latency
    /// distribution).
    pub fn merged(&self) -> Histogram {
        let inner = self.inner.lock();
        let mut merged = Histogram::new();
        for histogram in inner.values() {
            merged.merge(histogram);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for value in 0..4096u64 {
            let index = index_of(value);
            assert!(index >= last, "index not monotone at {value}");
            assert!(upper_bound(index) >= value, "upper bound below {value}");
            last = index;
        }
        assert!(index_of(u64::MAX) < BUCKETS);
        assert_eq!(upper_bound(index_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let histogram = Histogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile(0.5), 0);
        assert_eq!(histogram.percentile(0.99), 0);
        assert_eq!(histogram.max(), 0);
        assert_eq!(histogram.mean(), 0.0);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot, HistogramSnapshot::default());
    }

    #[test]
    fn small_values_are_exact() {
        let mut histogram = Histogram::new();
        for value in [0u64, 1, 2, 3, 7, 11, 15] {
            histogram.record(value);
        }
        assert_eq!(histogram.percentile(0.0), 0);
        assert_eq!(histogram.percentile(1.0), 15);
        // 7 samples: the nearest-rank median is the 4th smallest = 3.
        assert_eq!(histogram.percentile(0.5), 3);
    }

    #[test]
    fn saturation_at_extreme_values() {
        let mut histogram = Histogram::new();
        histogram.record(u64::MAX);
        histogram.record(u64::MAX - 1);
        histogram.record(1);
        assert_eq!(histogram.max(), u64::MAX);
        assert_eq!(histogram.percentile(1.0), u64::MAX);
        assert_eq!(histogram.count(), 3);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for value in [3u64, 900, 17, 4_000_000] {
            a.record(value);
            combined.record(value);
        }
        for value in [250u64, 250, 1_000_000_000] {
            b.record(value);
            combined.record(value);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max(), combined.max());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(q), combined.percentile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_set_keys_and_merges() {
        let set = HistogramSet::new();
        set.observe("alice", 100);
        set.observe("alice", 200);
        set.observe("bob", 50);
        let snapshots = set.snapshots();
        assert_eq!(snapshots.len(), 2);
        assert_eq!(snapshots["alice"].count, 2);
        assert_eq!(snapshots["bob"].count, 1);
        assert_eq!(set.merged().count(), 3);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut histogram = Histogram::new();
        for value in [12u64, 90, 1500, 72_000] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Percentiles agree with a sorted-vec reference within the bucket
        /// resolution: never below the true order statistic, and at most
        /// `1/SUB_BUCKETS` relative error above it.
        #[test]
        fn percentiles_match_sorted_reference(
            samples in proptest::collection::vec(0u64..2_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut histogram = Histogram::new();
            for &sample in &samples {
                histogram.record(sample);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let reported = histogram.percentile(q);
            prop_assert!(reported >= truth,
                "reported {reported} below true {truth}");
            prop_assert!(reported <= truth + truth / SUB_BUCKETS + 1,
                "reported {reported} beyond error bound of true {truth}");
        }

        /// The recorded maximum is always exact, and p100 equals it.
        #[test]
        fn max_is_exact(samples in proptest::collection::vec(0u64..u64::MAX, 1..64)) {
            let mut histogram = Histogram::new();
            for &sample in &samples {
                histogram.record(sample);
            }
            prop_assert_eq!(histogram.max(), *samples.iter().max().unwrap());
            prop_assert_eq!(histogram.percentile(1.0), histogram.max());
        }
    }
}
