//! Sample sets: the decoded output of an annealing run.
//!
//! Mirrors the structure of D-Wave Ocean's `SampleSet`: a list of
//! (assignment, energy, num_occurrences) records plus aggregation helpers —
//! the statistics the paper's §5 reports (lowest-energy assignments, expected
//! cut over all returned samples).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One distinct sample with its energy and multiplicity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Spin assignment (entries ±1).
    pub spins: Vec<i8>,
    /// Energy of the assignment under the sampled model.
    pub energy: f64,
    /// How many reads returned this assignment.
    pub num_occurrences: u64,
}

impl SampleRecord {
    /// The assignment as a Boolean word using the paper's convention
    /// (spin +1 ↦ '0', spin −1 ↦ '1'), character i = variable i.
    pub fn bitstring(&self) -> String {
        self.spins
            .iter()
            .map(|&s| if s == 1 { '0' } else { '1' })
            .collect()
    }
}

/// The aggregated result of an annealing run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleSet {
    /// Distinct samples, sorted by ascending energy.
    pub records: Vec<SampleRecord>,
}

impl SampleSet {
    /// Build a sample set from raw per-read assignments and their energies,
    /// aggregating identical assignments.
    pub fn from_reads(reads: Vec<(Vec<i8>, f64)>) -> Self {
        let mut agg: BTreeMap<Vec<i8>, (f64, u64)> = BTreeMap::new();
        for (spins, energy) in reads {
            let entry = agg.entry(spins).or_insert((energy, 0));
            entry.1 += 1;
        }
        let mut records: Vec<SampleRecord> = agg
            .into_iter()
            .map(|(spins, (energy, n))| SampleRecord {
                spins,
                energy,
                num_occurrences: n,
            })
            .collect();
        records.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .unwrap()
                .then_with(|| a.spins.cmp(&b.spins))
        });
        SampleSet { records }
    }

    /// Total number of reads.
    pub fn total_reads(&self) -> u64 {
        self.records.iter().map(|r| r.num_occurrences).sum()
    }

    /// Number of distinct assignments.
    pub fn num_distinct(&self) -> usize {
        self.records.len()
    }

    /// The lowest-energy record, if any.
    pub fn lowest(&self) -> Option<&SampleRecord> {
        self.records.first()
    }

    /// All records whose energy is within `tol` of the minimum.
    pub fn ground_records(&self, tol: f64) -> Vec<&SampleRecord> {
        match self.lowest() {
            Some(best) => self
                .records
                .iter()
                .filter(|r| (r.energy - best.energy).abs() <= tol)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Occurrence-weighted mean energy over all reads.
    pub fn mean_energy(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.energy * r.num_occurrences as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Occurrence-weighted expectation of an arbitrary objective.
    pub fn expectation<F: Fn(&SampleRecord) -> f64>(&self, objective: F) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| objective(r) * r.num_occurrences as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Fraction of reads that landed within `tol` of the minimum energy —
    /// the annealer's ground-state success probability.
    pub fn ground_state_probability(&self, tol: f64) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 0.0;
        }
        let ground: u64 = self
            .ground_records(tol)
            .iter()
            .map(|r| r.num_occurrences)
            .sum();
        ground as f64 / total as f64
    }

    /// Counts keyed by Boolean word (paper convention: spin −1 ↦ '1') — the
    /// same shape the gate backend's shot counts use, so both paths decode
    /// through the same result schema.
    pub fn to_counts(&self) -> BTreeMap<String, u64> {
        self.records
            .iter()
            .map(|r| (r.bitstring(), r.num_occurrences))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_set() -> SampleSet {
        SampleSet::from_reads(vec![
            (vec![-1, 1, -1, 1], -4.0),
            (vec![1, -1, 1, -1], -4.0),
            (vec![-1, 1, -1, 1], -4.0),
            (vec![1, 1, 1, 1], 4.0),
            (vec![1, 1, -1, -1], 0.0),
        ])
    }

    #[test]
    fn aggregation_and_sorting() {
        let set = demo_set();
        assert_eq!(set.total_reads(), 5);
        assert_eq!(set.num_distinct(), 4);
        // Sorted ascending by energy: the two ground states first.
        assert_eq!(set.records[0].energy, -4.0);
        assert_eq!(set.records[1].energy, -4.0);
        assert_eq!(set.records[3].energy, 4.0);
        // The duplicated read is aggregated.
        let dup = set
            .records
            .iter()
            .find(|r| r.spins == vec![-1, 1, -1, 1])
            .unwrap();
        assert_eq!(dup.num_occurrences, 2);
    }

    #[test]
    fn bitstring_convention() {
        let rec = SampleRecord {
            spins: vec![-1, 1, -1, 1],
            energy: -4.0,
            num_occurrences: 1,
        };
        assert_eq!(rec.bitstring(), "1010");
    }

    #[test]
    fn ground_records_and_probability() {
        let set = demo_set();
        let ground = set.ground_records(1e-9);
        assert_eq!(ground.len(), 2);
        assert!((set.ground_state_probability(1e-9) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_energy_weighted_by_occurrences() {
        let set = demo_set();
        let expected = (-4.0 * 3.0 + 4.0 + 0.0) / 5.0;
        assert!((set.mean_energy() - expected).abs() < 1e-12);
    }

    #[test]
    fn expectation_custom_objective() {
        let set = demo_set();
        // Count +1 spins.
        let avg_up = set.expectation(|r| r.spins.iter().filter(|&&s| s == 1).count() as f64);
        assert!((avg_up - (2.0 * 3.0 + 4.0 + 2.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn counts_map_shape() {
        let set = demo_set();
        let counts = set.to_counts();
        assert_eq!(counts["1010"], 2);
        assert_eq!(counts["0101"], 1);
        assert_eq!(counts["0000"], 1);
        assert_eq!(counts.values().sum::<u64>(), 5);
    }

    #[test]
    fn empty_set_edge_cases() {
        let set = SampleSet::from_reads(vec![]);
        assert_eq!(set.total_reads(), 0);
        assert!(set.lowest().is_none());
        assert_eq!(set.mean_energy(), 0.0);
        assert_eq!(set.ground_state_probability(1e-9), 0.0);
    }
}
