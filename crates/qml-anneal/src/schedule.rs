//! Annealing schedules: how the inverse temperature β evolves over a read.

use serde::{Deserialize, Serialize};

use crate::bqm::BinaryQuadraticModel;

/// Interpolation used between β_min and β_max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScheduleKind {
    /// Geometric (exponential) interpolation — the default used by Ocean's
    /// `neal` sampler.
    #[default]
    Geometric,
    /// Linear interpolation.
    Linear,
}

/// An annealing schedule: a sequence of β values, one per sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Inverse temperature at the start (hot).
    pub beta_min: f64,
    /// Inverse temperature at the end (cold).
    pub beta_max: f64,
    /// Number of sweeps.
    pub num_sweeps: usize,
    /// Interpolation kind.
    pub kind: ScheduleKind,
}

impl Schedule {
    /// A geometric schedule over the given β range.
    pub fn geometric(beta_min: f64, beta_max: f64, num_sweeps: usize) -> Self {
        assert!(
            beta_min > 0.0 && beta_max > beta_min,
            "need 0 < beta_min < beta_max"
        );
        assert!(num_sweeps > 0, "need at least one sweep");
        Schedule {
            beta_min,
            beta_max,
            num_sweeps,
            kind: ScheduleKind::Geometric,
        }
    }

    /// A linear schedule over the given β range.
    pub fn linear(beta_min: f64, beta_max: f64, num_sweeps: usize) -> Self {
        Schedule {
            kind: ScheduleKind::Linear,
            ..Schedule::geometric(beta_min, beta_max, num_sweeps)
        }
    }

    /// A default β range derived from the problem, following the heuristic of
    /// Ocean's `neal`: start hot enough that the largest possible move is
    /// accepted with probability ½, end cold enough that a unit move is
    /// accepted with probability 1 %.
    pub fn default_for(bqm: &BinaryQuadraticModel, num_sweeps: usize) -> Self {
        let max_field = bqm.max_effective_field().max(1e-9);
        let beta_min = (2.0f64).ln() / (2.0 * max_field);
        let beta_max = (100.0f64).ln() / 1.0_f64.min(max_field).max(1e-3);
        Schedule::geometric(beta_min, beta_max.max(beta_min * 10.0), num_sweeps)
    }

    /// The β value used at sweep `i` (0-based).
    pub fn beta_at(&self, i: usize) -> f64 {
        assert!(i < self.num_sweeps);
        if self.num_sweeps == 1 {
            return self.beta_max;
        }
        let t = i as f64 / (self.num_sweeps - 1) as f64;
        match self.kind {
            ScheduleKind::Linear => self.beta_min + t * (self.beta_max - self.beta_min),
            ScheduleKind::Geometric => self.beta_min * (self.beta_max / self.beta_min).powf(t),
        }
    }

    /// All β values in sweep order.
    pub fn betas(&self) -> Vec<f64> {
        (0..self.num_sweeps).map(|i| self.beta_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_schedule_endpoints_and_monotonicity() {
        let s = Schedule::geometric(0.1, 10.0, 50);
        let betas = s.betas();
        assert!((betas[0] - 0.1).abs() < 1e-12);
        assert!((betas[49] - 10.0).abs() < 1e-9);
        assert!(betas.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn linear_schedule_is_evenly_spaced() {
        let s = Schedule::linear(1.0, 5.0, 5);
        let betas = s.betas();
        assert_eq!(betas, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn single_sweep_uses_cold_beta() {
        let s = Schedule::geometric(0.1, 10.0, 1);
        assert_eq!(s.beta_at(0), 10.0);
    }

    #[test]
    fn default_schedule_scales_with_problem() {
        let weak = BinaryQuadraticModel::from_ising(&[0.0, 0.0], &[(0, 1, 0.5)]);
        let strong = BinaryQuadraticModel::from_ising(&[0.0, 0.0], &[(0, 1, 50.0)]);
        let sw = Schedule::default_for(&weak, 10);
        let ss = Schedule::default_for(&strong, 10);
        assert!(
            ss.beta_min < sw.beta_min,
            "stronger couplings need a hotter start"
        );
        assert!(sw.beta_max > sw.beta_min);
        assert!(ss.beta_max > ss.beta_min);
    }

    #[test]
    #[should_panic(expected = "beta_min < beta_max")]
    fn inverted_range_panics() {
        Schedule::geometric(5.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one sweep")]
    fn zero_sweeps_panics() {
        Schedule::geometric(0.1, 1.0, 0);
    }
}
