//! # qml-anneal — binary quadratic models and simulated annealing
//!
//! The repository's substitute for the D-Wave Ocean stack used by the paper's
//! annealing path (§5): `dimod`-style [`BinaryQuadraticModel`]s (SPIN/BINARY
//! vartypes with exact conversions), annealing [`Schedule`]s, and a
//! `neal`-style Metropolis [`SimulatedAnnealer`] returning aggregated
//! [`SampleSet`]s.

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod bqm;
pub mod sampler;
pub mod sampleset;
pub mod schedule;

pub use bqm::{BinaryQuadraticModel, Vartype};
pub use sampler::{AnnealParams, SimulatedAnnealer};
pub use sampleset::{SampleRecord, SampleSet};
pub use schedule::{Schedule, ScheduleKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ising(max_n: usize) -> impl Strategy<Value = BinaryQuadraticModel> {
        (2..=max_n).prop_flat_map(|n| {
            let h = proptest::collection::vec(-2.0f64..2.0, n);
            let j = proptest::collection::vec((0..n, 0..n, -2.0f64..2.0), 0..(n * 2));
            (h, j).prop_map(move |(h, j)| {
                let j: Vec<(usize, usize, f64)> =
                    j.into_iter().filter(|&(a, b, _)| a != b).collect();
                BinaryQuadraticModel::from_ising(&h, &j)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Spin↔binary conversion preserves the energy of every assignment.
        #[test]
        fn vartype_conversion_preserves_energy(bqm in arb_ising(6), mask in 0u64..64) {
            let n = bqm.num_variables();
            let spins: Vec<i8> = (0..n).map(|i| if (mask >> i) & 1 == 1 { -1 } else { 1 }).collect();
            let bits: Vec<bool> = spins.iter().map(|&s| s == -1).collect();
            let direct = bqm.energy_spin(&spins);
            let via_binary = bqm.to_binary().energy_binary(&bits);
            prop_assert!((direct - via_binary).abs() < 1e-9);
        }

        /// The annealer never reports an energy below the true ground energy,
        /// and its best sample's energy matches the reported record energy.
        #[test]
        fn annealer_energies_are_consistent(bqm in arb_ising(6), seed in 0u64..20) {
            let set = SimulatedAnnealer::new().sample(
                &bqm,
                &AnnealParams::with_reads(20).with_sweeps(50).with_seed(seed),
            );
            let exact = bqm.brute_force_ground_energy();
            for record in &set.records {
                prop_assert!(record.energy >= exact - 1e-9);
                prop_assert!((bqm.energy_spin(&record.spins) - record.energy).abs() < 1e-9);
            }
            prop_assert_eq!(set.total_reads(), 20);
        }
    }
}
