//! Binary quadratic models (BQM): the problem representation consumed by the
//! annealing path.
//!
//! The paper's annealer backend "consumes a single Ising descriptor
//! (equivalently a QUBO/BQM) specifying (h, J)" (§5). This module is the
//! repository's substitute for `dimod`'s BQM: a quadratic objective over
//! either SPIN (±1) or BINARY ({0,1}) variables with exact conversions
//! between the two conventions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Variable convention of a BQM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vartype {
    /// Ising spins s ∈ {−1, +1}.
    Spin,
    /// Binary variables x ∈ {0, 1}.
    Binary,
}

/// A binary quadratic model: `offset + Σ_i linear_i v_i + Σ_{i<j} q_ij v_i v_j`
/// where `v` are SPIN or BINARY variables depending on [`Vartype`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryQuadraticModel {
    vartype: Vartype,
    linear: Vec<f64>,
    /// Quadratic terms keyed by (i, j) with i < j.
    quadratic: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl BinaryQuadraticModel {
    /// An empty model over `num_variables` variables.
    pub fn new(num_variables: usize, vartype: Vartype) -> Self {
        BinaryQuadraticModel {
            vartype,
            linear: vec![0.0; num_variables],
            quadratic: BTreeMap::new(),
            offset: 0.0,
        }
    }

    /// Build an Ising model from linear fields `h` and couplings `j`.
    pub fn from_ising(h: &[f64], j: &[(usize, usize, f64)]) -> Self {
        let mut bqm = BinaryQuadraticModel::new(h.len(), Vartype::Spin);
        for (i, &hi) in h.iter().enumerate() {
            bqm.add_linear(i, hi);
        }
        for &(a, b, jab) in j {
            bqm.add_quadratic(a, b, jab);
        }
        bqm
    }

    /// Build a QUBO from upper-triangular entries (diagonal = linear).
    pub fn from_qubo(num_variables: usize, q: &[(usize, usize, f64)], offset: f64) -> Self {
        let mut bqm = BinaryQuadraticModel::new(num_variables, Vartype::Binary);
        bqm.offset = offset;
        for &(i, j, v) in q {
            if i == j {
                bqm.add_linear(i, v);
            } else {
                bqm.add_quadratic(i, j, v);
            }
        }
        bqm
    }

    /// Variable convention.
    pub fn vartype(&self) -> Vartype {
        self.vartype
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.linear.len()
    }

    /// Number of non-zero quadratic interactions.
    pub fn num_interactions(&self) -> usize {
        self.quadratic.len()
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of variable `i`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Quadratic coefficient of the pair (i, j) (0 if absent).
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        let key = (i.min(j), i.max(j));
        self.quadratic.get(&key).copied().unwrap_or(0.0)
    }

    /// Iterate over quadratic terms as (i, j, value) with i < j.
    pub fn interactions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.quadratic.iter().map(|(&(i, j), &v)| (i, j, v))
    }

    /// Add to the linear coefficient of variable `i`.
    pub fn add_linear(&mut self, i: usize, value: f64) {
        assert!(i < self.linear.len(), "variable {i} out of range");
        self.linear[i] += value;
    }

    /// Add to the quadratic coefficient of the pair (i, j).
    pub fn add_quadratic(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "diagonal terms belong in the linear part");
        assert!(
            i < self.linear.len() && j < self.linear.len(),
            "interaction ({i},{j}) out of range"
        );
        *self.quadratic.entry((i.min(j), i.max(j))).or_insert(0.0) += value;
    }

    /// Add to the constant offset.
    pub fn add_offset(&mut self, value: f64) {
        self.offset += value;
    }

    /// Energy of a SPIN sample (entries ±1). The model is converted on the
    /// fly if it is BINARY.
    pub fn energy_spin(&self, spins: &[i8]) -> f64 {
        assert_eq!(
            spins.len(),
            self.num_variables(),
            "sample has the wrong length"
        );
        match self.vartype {
            Vartype::Spin => {
                self.raw_energy(&spins.iter().map(|&s| f64::from(s)).collect::<Vec<_>>())
            }
            Vartype::Binary => {
                let bits: Vec<f64> = spins
                    .iter()
                    .map(|&s| if s == 1 { 0.0 } else { 1.0 })
                    .collect();
                self.raw_energy(&bits)
            }
        }
    }

    /// Energy of a BINARY sample (entries false/true ↦ 0/1).
    pub fn energy_binary(&self, bits: &[bool]) -> f64 {
        assert_eq!(
            bits.len(),
            self.num_variables(),
            "sample has the wrong length"
        );
        match self.vartype {
            Vartype::Binary => self.raw_energy(
                &bits
                    .iter()
                    .map(|&b| if b { 1.0 } else { 0.0 })
                    .collect::<Vec<_>>(),
            ),
            Vartype::Spin => {
                // x = 1 ⇒ s = −1 (the paper's readout convention).
                let spins: Vec<f64> = bits.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
                self.raw_energy(&spins)
            }
        }
    }

    fn raw_energy(&self, values: &[f64]) -> f64 {
        let linear: f64 = self.linear.iter().zip(values).map(|(l, v)| l * v).sum();
        let quadratic: f64 = self
            .quadratic
            .iter()
            .map(|(&(i, j), &q)| q * values[i] * values[j])
            .sum();
        self.offset + linear + quadratic
    }

    /// Convert to the SPIN convention (exact, adjusting offset/linear terms).
    pub fn to_spin(&self) -> BinaryQuadraticModel {
        match self.vartype {
            Vartype::Spin => self.clone(),
            Vartype::Binary => {
                // x = (1 − s)/2  (x=1 ⇔ s=−1, matching energy_binary above).
                let n = self.num_variables();
                let mut out = BinaryQuadraticModel::new(n, Vartype::Spin);
                out.offset = self.offset;
                for (i, &l) in self.linear.iter().enumerate() {
                    // l·x = l/2 − l/2·s
                    out.offset += l / 2.0;
                    out.add_linear(i, -l / 2.0);
                }
                for (&(i, j), &q) in &self.quadratic {
                    // q·x_i·x_j = q/4 (1 − s_i)(1 − s_j)
                    out.offset += q / 4.0;
                    out.add_linear(i, -q / 4.0);
                    out.add_linear(j, -q / 4.0);
                    out.add_quadratic(i, j, q / 4.0);
                }
                out
            }
        }
    }

    /// Convert to the BINARY convention (exact).
    pub fn to_binary(&self) -> BinaryQuadraticModel {
        match self.vartype {
            Vartype::Binary => self.clone(),
            Vartype::Spin => {
                // s = 1 − 2x.
                let n = self.num_variables();
                let mut out = BinaryQuadraticModel::new(n, Vartype::Binary);
                out.offset = self.offset;
                for (i, &h) in self.linear.iter().enumerate() {
                    out.offset += h;
                    out.add_linear(i, -2.0 * h);
                }
                for (&(i, j), &jij) in &self.quadratic {
                    out.offset += jij;
                    out.add_linear(i, -2.0 * jij);
                    out.add_linear(j, -2.0 * jij);
                    out.add_quadratic(i, j, 4.0 * jij);
                }
                out
            }
        }
    }

    /// Adjacency list: for each variable, the (neighbor, coupling) pairs.
    /// Used by the annealer's O(1) energy-delta updates.
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.num_variables()];
        for (&(i, j), &q) in &self.quadratic {
            adj[i].push((j, q));
            adj[j].push((i, q));
        }
        adj
    }

    /// The largest absolute effective field any single variable can feel
    /// (used to pick default annealing temperature ranges).
    pub fn max_effective_field(&self) -> f64 {
        let adj = self.adjacency();
        (0..self.num_variables())
            .map(|i| self.linear[i].abs() + adj[i].iter().map(|(_, q)| q.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Exact ground-state energy by enumeration (≤ 24 variables).
    pub fn brute_force_ground_energy(&self) -> f64 {
        let n = self.num_variables();
        assert!(n <= 24, "brute force is limited to 24 variables");
        let spin_model = self.to_spin();
        let mut best = f64::INFINITY;
        for mask in 0u64..(1u64 << n) {
            let spins: Vec<i8> = (0..n)
                .map(|i| if (mask >> i) & 1 == 1 { -1 } else { 1 })
                .collect();
            best = best.min(spin_model.energy_spin(&spins));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Max-Cut C4 Ising model: h = 0, unit couplings on the ring.
    fn c4_ising() -> BinaryQuadraticModel {
        BinaryQuadraticModel::from_ising(
            &[0.0; 4],
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)],
        )
    }

    #[test]
    fn c4_energies() {
        let bqm = c4_ising();
        assert_eq!(bqm.num_variables(), 4);
        assert_eq!(bqm.num_interactions(), 4);
        // Alternating spins: every edge anti-aligned ⇒ E = −4.
        assert_eq!(bqm.energy_spin(&[1, -1, 1, -1]), -4.0);
        // Aligned spins: E = +4.
        assert_eq!(bqm.energy_spin(&[1, 1, 1, 1]), 4.0);
        assert_eq!(bqm.brute_force_ground_energy(), -4.0);
    }

    #[test]
    fn binary_energy_uses_paper_convention() {
        // Boolean 1 ↦ spin −1, so "1010" is the alternating ground state.
        let bqm = c4_ising();
        assert_eq!(bqm.energy_binary(&[true, false, true, false]), -4.0);
        assert_eq!(bqm.energy_binary(&[false, false, false, false]), 4.0);
    }

    #[test]
    fn spin_binary_round_trip_preserves_energies() {
        let bqm = BinaryQuadraticModel::from_ising(&[0.5, -1.0, 0.0], &[(0, 1, 1.2), (1, 2, -0.7)]);
        let binary = bqm.to_binary();
        let back = binary.to_spin();
        for mask in 0u8..8 {
            let spins: Vec<i8> = (0..3)
                .map(|i| if (mask >> i) & 1 == 1 { -1 } else { 1 })
                .collect();
            let bits: Vec<bool> = spins.iter().map(|&s| s == -1).collect();
            let e0 = bqm.energy_spin(&spins);
            assert!(
                (binary.energy_binary(&bits) - e0).abs() < 1e-9,
                "binary mask {mask}"
            );
            assert!(
                (back.energy_spin(&spins) - e0).abs() < 1e-9,
                "round trip mask {mask}"
            );
        }
    }

    #[test]
    fn qubo_construction_and_energy() {
        // Minimize x0 + x1 − 2 x0 x1 (ground states 00 and 11, energy 0).
        let bqm =
            BinaryQuadraticModel::from_qubo(2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, -2.0)], 0.0);
        assert_eq!(bqm.energy_binary(&[false, false]), 0.0);
        assert_eq!(bqm.energy_binary(&[true, true]), 0.0);
        assert_eq!(bqm.energy_binary(&[true, false]), 1.0);
        assert_eq!(bqm.brute_force_ground_energy(), 0.0);
    }

    #[test]
    fn repeated_terms_accumulate() {
        let mut bqm = BinaryQuadraticModel::new(2, Vartype::Spin);
        bqm.add_quadratic(0, 1, 1.0);
        bqm.add_quadratic(1, 0, 0.5);
        bqm.add_linear(0, 0.25);
        bqm.add_linear(0, 0.25);
        assert_eq!(bqm.quadratic(0, 1), 1.5);
        assert_eq!(bqm.linear(0), 0.5);
        assert_eq!(bqm.num_interactions(), 1);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let bqm = c4_ising();
        let adj = bqm.adjacency();
        assert_eq!(adj[0].len(), 2);
        assert!(adj[0].iter().any(|&(j, _)| j == 1));
        assert!(adj[0].iter().any(|&(j, _)| j == 3));
        for i in 0..4 {
            for &(j, w) in &adj[i] {
                assert!(adj[j].iter().any(|&(k, w2)| k == i && w2 == w));
            }
        }
    }

    #[test]
    fn max_effective_field() {
        let bqm = BinaryQuadraticModel::from_ising(&[0.5, 0.0], &[(0, 1, -2.0)]);
        assert_eq!(bqm.max_effective_field(), 2.5);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_quadratic_panics() {
        let mut bqm = BinaryQuadraticModel::new(2, Vartype::Spin);
        bqm.add_quadratic(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_sample_length_panics() {
        c4_ising().energy_spin(&[1, -1]);
    }

    #[test]
    fn offset_propagates_through_conversions() {
        let mut bqm = c4_ising();
        bqm.add_offset(2.5);
        assert_eq!(bqm.energy_spin(&[1, -1, 1, -1]), -1.5);
        assert_eq!(
            bqm.to_binary().energy_binary(&[true, false, true, false]),
            -1.5
        );
    }
}
