//! The Metropolis simulated-annealing sampler — the repository's substitute
//! for D-Wave Ocean's `neal.SimulatedAnnealingSampler`.
//!
//! Each read starts from a uniformly random spin configuration and performs
//! `num_sweeps` Metropolis sweeps while the inverse temperature follows the
//! schedule; flips are accepted with probability `min(1, exp(-β·ΔE))`. Reads
//! are independent, so they are distributed over rayon worker threads with a
//! per-read seed derived deterministically from the sampler seed — results
//! are reproducible regardless of thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::bqm::{BinaryQuadraticModel, Vartype};
use crate::sampleset::SampleSet;
use crate::schedule::Schedule;

/// Configuration of a simulated-annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealParams {
    /// Number of independent reads (anneals).
    pub num_reads: u64,
    /// Metropolis sweeps per read.
    pub num_sweeps: usize,
    /// Explicit β range; `None` derives a range from the problem.
    pub beta_range: Option<(f64, f64)>,
    /// Seed for reproducible sampling.
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            num_reads: 1000,
            num_sweeps: 1000,
            beta_range: None,
            seed: 0,
        }
    }
}

impl AnnealParams {
    /// Parameters with the given read count and defaults otherwise.
    pub fn with_reads(num_reads: u64) -> Self {
        AnnealParams {
            num_reads,
            ..AnnealParams::default()
        }
    }

    /// Builder-style sweep count.
    pub fn with_sweeps(mut self, num_sweeps: usize) -> Self {
        self.num_sweeps = num_sweeps;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style β range.
    pub fn with_beta_range(mut self, beta_min: f64, beta_max: f64) -> Self {
        self.beta_range = Some((beta_min, beta_max));
        self
    }
}

/// A classical Metropolis simulated-annealing sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedAnnealer;

impl SimulatedAnnealer {
    /// Create a sampler.
    pub fn new() -> Self {
        SimulatedAnnealer
    }

    /// Sample the model. The result is reported in SPIN convention regardless
    /// of the model's vartype (energies are computed on the original model).
    pub fn sample(&self, bqm: &BinaryQuadraticModel, params: &AnnealParams) -> SampleSet {
        assert!(params.num_reads > 0, "num_reads must be positive");
        assert!(params.num_sweeps > 0, "num_sweeps must be positive");
        let spin_model = match bqm.vartype() {
            Vartype::Spin => bqm.clone(),
            Vartype::Binary => bqm.to_spin(),
        };
        let n = spin_model.num_variables();
        let schedule = match params.beta_range {
            Some((lo, hi)) => Schedule::geometric(lo, hi, params.num_sweeps),
            None => Schedule::default_for(&spin_model, params.num_sweeps),
        };
        let betas = schedule.betas();
        let adjacency = spin_model.adjacency();
        let linear: Vec<f64> = (0..n).map(|i| spin_model.linear(i)).collect();

        let reads: Vec<(Vec<i8>, f64)> = (0..params.num_reads)
            .into_par_iter()
            .map(|read| {
                let mut rng = StdRng::seed_from_u64(
                    params.seed ^ (read.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(read),
                );
                let mut spins: Vec<i8> = (0..n)
                    .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                    .collect();
                for &beta in &betas {
                    for i in 0..n {
                        // ΔE of flipping spin i: −2 s_i (h_i + Σ_j J_ij s_j).
                        let field: f64 = linear[i]
                            + adjacency[i]
                                .iter()
                                .map(|&(j, w)| w * f64::from(spins[j]))
                                .sum::<f64>();
                        let delta = -2.0 * f64::from(spins[i]) * field;
                        // Metropolis acceptance with a random tie-break on
                        // zero-cost moves: a deterministic scan order plus
                        // "always accept Δ=0" can lock the chain into a limit
                        // cycle on degenerate plateaus (e.g. even cycles).
                        let accept = if delta < 0.0 {
                            true
                        } else if delta == 0.0 {
                            rng.gen::<bool>()
                        } else {
                            rng.gen::<f64>() < (-beta * delta).exp()
                        };
                        if accept {
                            spins[i] = -spins[i];
                        }
                    }
                }
                let energy = bqm.energy_spin(&spins);
                (spins, energy)
            })
            .collect();

        SampleSet::from_reads(reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Max-Cut C4 Ising model.
    fn c4_ising() -> BinaryQuadraticModel {
        BinaryQuadraticModel::from_ising(
            &[0.0; 4],
            &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)],
        )
    }

    #[test]
    fn c4_annealing_finds_both_ground_states() {
        // The paper's Fig. 3 path: 1000 reads on the C4 Ising problem must
        // return the optimal cut assignments 1010 and 0101.
        let set = SimulatedAnnealer::new().sample(
            &c4_ising(),
            &AnnealParams::with_reads(1000)
                .with_sweeps(100)
                .with_seed(42),
        );
        assert_eq!(set.total_reads(), 1000);
        assert_eq!(set.lowest().unwrap().energy, -4.0);
        let ground: Vec<String> = set
            .ground_records(1e-9)
            .iter()
            .map(|r| r.bitstring())
            .collect();
        assert!(
            ground.contains(&"1010".to_string()),
            "ground states: {ground:?}"
        );
        assert!(
            ground.contains(&"0101".to_string()),
            "ground states: {ground:?}"
        );
        // Simulated annealing on this tiny frustration-free instance should
        // almost always reach the ground state.
        assert!(set.ground_state_probability(1e-9) > 0.9);
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let sampler = SimulatedAnnealer::new();
        let params = AnnealParams::with_reads(50).with_sweeps(50).with_seed(7);
        let a = sampler.sample(&c4_ising(), &params);
        let b = sampler.sample(&c4_ising(), &params);
        assert_eq!(a, b);
        let c = sampler.sample(&c4_ising(), &params.clone().with_seed(8));
        assert_ne!(a, c);
    }

    #[test]
    fn ferromagnet_aligns() {
        // J < 0 favours aligned spins; ground states all-up / all-down.
        let bqm = BinaryQuadraticModel::from_ising(
            &[0.0; 5],
            &[(0, 1, -1.0), (1, 2, -1.0), (2, 3, -1.0), (3, 4, -1.0)],
        );
        let set = SimulatedAnnealer::new().sample(
            &bqm,
            &AnnealParams::with_reads(200).with_sweeps(200).with_seed(3),
        );
        assert_eq!(set.lowest().unwrap().energy, -4.0);
        let ground: Vec<String> = set
            .ground_records(1e-9)
            .iter()
            .map(|r| r.bitstring())
            .collect();
        assert!(ground.contains(&"00000".to_string()) || ground.contains(&"11111".to_string()));
    }

    #[test]
    fn linear_field_breaks_symmetry() {
        // Strong positive h favours spin −1 (bit '1') on every variable.
        let bqm = BinaryQuadraticModel::from_ising(&[5.0, 5.0, 5.0], &[]);
        let set = SimulatedAnnealer::new().sample(
            &bqm,
            &AnnealParams::with_reads(100).with_sweeps(100).with_seed(1),
        );
        assert_eq!(set.lowest().unwrap().bitstring(), "111");
        assert_eq!(set.lowest().unwrap().energy, -15.0);
    }

    #[test]
    fn binary_vartype_models_are_handled() {
        // QUBO: minimize x0 + x1 − 3 x0 x1 → ground state 11 with energy −1.
        let bqm =
            BinaryQuadraticModel::from_qubo(2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, -3.0)], 0.0);
        let set = SimulatedAnnealer::new().sample(
            &bqm,
            &AnnealParams::with_reads(100).with_sweeps(100).with_seed(5),
        );
        let best = set.lowest().unwrap();
        assert_eq!(best.bitstring(), "11");
        assert!((best.energy - (-1.0)).abs() < 1e-9);
    }

    #[test]
    fn more_sweeps_do_not_hurt_solution_quality() {
        let bqm = {
            // A slightly frustrated 8-spin ring with a defect coupling.
            let mut j = vec![];
            for i in 0..8usize {
                j.push((i, (i + 1) % 8, 1.0));
            }
            j.push((0, 4, 1.5));
            BinaryQuadraticModel::from_ising(&[0.0; 8], &j)
        };
        let exact = bqm.brute_force_ground_energy();
        let quick = SimulatedAnnealer::new().sample(
            &bqm,
            &AnnealParams::with_reads(50).with_sweeps(5).with_seed(11),
        );
        let thorough = SimulatedAnnealer::new().sample(
            &bqm,
            &AnnealParams::with_reads(50).with_sweeps(500).with_seed(11),
        );
        assert!(thorough.mean_energy() <= quick.mean_energy() + 1e-9);
        assert!((thorough.lowest().unwrap().energy - exact).abs() < 1e-9);
    }

    #[test]
    fn explicit_beta_range_is_respected() {
        let set = SimulatedAnnealer::new().sample(
            &c4_ising(),
            &AnnealParams::with_reads(20)
                .with_sweeps(20)
                .with_seed(2)
                .with_beta_range(0.01, 20.0),
        );
        assert_eq!(set.total_reads(), 20);
    }

    #[test]
    #[should_panic(expected = "num_reads")]
    fn zero_reads_panics() {
        SimulatedAnnealer::new().sample(
            &c4_ising(),
            &AnnealParams {
                num_reads: 0,
                ..AnnealParams::default()
            },
        );
    }
}
