//! Quantum data type descriptors (paper §4.1, Listing 2).
//!
//! A [`QuantumDataType`] is "the semantic contract that tells every component
//! what a quantum register means": its width, encoding, bit significance and
//! how a measurement of it should be interpreted. It deliberately says nothing
//! about gates, pulses, qumodes or anneal variables — that is the backend's
//! concern.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::encoding::{BitOrder, EncodingKind, MeasurementSemantics, PhaseScale};
use crate::error::{QmlError, Result};
use crate::params::ParamValue;

/// Name of the JSON Schema governing quantum data type artifacts
/// (the `$schema` value in the paper's Listing 2).
pub const QDT_SCHEMA: &str = "qdt-core.schema.json";

/// A typed quantum register: the middle layer's answer to "what does this
/// register mean?".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumDataType {
    /// JSON Schema identifier used to validate this artifact.
    #[serde(rename = "$schema", default = "default_qdt_schema")]
    pub schema: String,
    /// Unique identifier of the logical register (referenced by operator
    /// descriptors via `domain_qdt` / `codomain_qdt`).
    pub id: String,
    /// Human-readable register name.
    pub name: String,
    /// Number of logical carriers (qubits, qumodes, anneal variables, ...).
    pub width: usize,
    /// What the computational-basis index of the register represents.
    pub encoding_kind: EncodingKind,
    /// Significance order of the carriers.
    #[serde(default)]
    pub bit_order: BitOrder,
    /// How Z-basis readouts of this register are to be interpreted.
    pub measurement_semantics: MeasurementSemantics,
    /// Phase resolution, required iff `encoding_kind == PHASE_REGISTER`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub phase_scale: Option<PhaseScale>,
    /// Free-form, forward-compatible metadata (provenance, units, ...).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub metadata: BTreeMap<String, ParamValue>,
}

fn default_qdt_schema() -> String {
    QDT_SCHEMA.to_string()
}

impl QuantumDataType {
    /// Start building a register descriptor with the given id and width.
    pub fn builder(id: impl Into<String>, width: usize) -> QdtBuilder {
        QdtBuilder::new(id, width)
    }

    /// The paper's Listing 2 register: a 10-carrier fixed-point phase
    /// accumulator with resolution 1/1024, LSB-first, measured `AS_PHASE`.
    pub fn phase_register(
        id: impl Into<String>,
        name: impl Into<String>,
        width: usize,
    ) -> Result<Self> {
        QdtBuilder::new(id, width)
            .name(name)
            .encoding(EncodingKind::PhaseRegister)
            .measurement(MeasurementSemantics::AsPhase)
            .phase_scale(PhaseScale::for_width(width)?)
            .build()
    }

    /// The paper's §5 register: `width` Ising decision variables measured as
    /// Boolean labels (`ising_vars` / `s` in the Max-Cut proof of concept).
    pub fn ising_spins(
        id: impl Into<String>,
        name: impl Into<String>,
        width: usize,
    ) -> Result<Self> {
        QdtBuilder::new(id, width)
            .name(name)
            .encoding(EncodingKind::IsingSpin)
            .measurement(MeasurementSemantics::AsBool)
            .build()
    }

    /// An unsigned integer register decoded `AS_INT`.
    pub fn int_register(
        id: impl Into<String>,
        name: impl Into<String>,
        width: usize,
    ) -> Result<Self> {
        QdtBuilder::new(id, width)
            .name(name)
            .encoding(EncodingKind::IntRegister)
            .measurement(MeasurementSemantics::AsInt)
            .build()
    }

    /// A Boolean register decoded `AS_BOOL`.
    pub fn bool_register(
        id: impl Into<String>,
        name: impl Into<String>,
        width: usize,
    ) -> Result<Self> {
        QdtBuilder::new(id, width)
            .name(name)
            .encoding(EncodingKind::BoolRegister)
            .measurement(MeasurementSemantics::AsBool)
            .build()
    }

    /// Validate the structural constraints of this descriptor.
    ///
    /// * `id` and `name` must be non-empty,
    /// * `width` must be in `1..=63` (the decoded word must fit a `u64`),
    /// * a `PHASE_REGISTER` must carry a `phase_scale`,
    /// * non-phase registers must not claim `AS_PHASE` semantics.
    pub fn validate(&self) -> Result<()> {
        if self.id.trim().is_empty() {
            return Err(QmlError::Validation(
                "quantum data type id must be non-empty".into(),
            ));
        }
        if self.name.trim().is_empty() {
            return Err(QmlError::Validation(format!(
                "quantum data type `{}` must have a non-empty name",
                self.id
            )));
        }
        if self.width == 0 || self.width > 63 {
            return Err(QmlError::Validation(format!(
                "quantum data type `{}` width {} out of range 1..=63",
                self.id, self.width
            )));
        }
        if self.encoding_kind == EncodingKind::PhaseRegister && self.phase_scale.is_none() {
            return Err(QmlError::Validation(format!(
                "phase register `{}` must declare a phase_scale",
                self.id
            )));
        }
        if self.encoding_kind != EncodingKind::PhaseRegister
            && self.measurement_semantics == MeasurementSemantics::AsPhase
        {
            return Err(QmlError::Validation(format!(
                "register `{}` is not a PHASE_REGISTER but requests AS_PHASE semantics",
                self.id
            )));
        }
        if self.schema != QDT_SCHEMA {
            return Err(QmlError::Validation(format!(
                "quantum data type `{}` references unknown schema `{}` (expected `{QDT_SCHEMA}`)",
                self.id, self.schema
            )));
        }
        Ok(())
    }

    /// Names of the logical carrier wires in classical-bit order, e.g.
    /// `reg_phase[0]`, `reg_phase[1]`, ... — the form used by the
    /// `clbit_order` array in result schemas.
    pub fn wire_labels(&self) -> Vec<String> {
        (0..self.width)
            .map(|i| format!("{}[{i}]", self.id))
            .collect()
    }
}

/// Builder for [`QuantumDataType`] used by the algorithmic libraries.
#[derive(Debug, Clone)]
pub struct QdtBuilder {
    id: String,
    name: Option<String>,
    width: usize,
    encoding: EncodingKind,
    bit_order: BitOrder,
    measurement: Option<MeasurementSemantics>,
    phase_scale: Option<PhaseScale>,
    metadata: BTreeMap<String, ParamValue>,
}

impl QdtBuilder {
    /// New builder for a register with the given id and width.
    pub fn new(id: impl Into<String>, width: usize) -> Self {
        QdtBuilder {
            id: id.into(),
            name: None,
            width,
            encoding: EncodingKind::IntRegister,
            bit_order: BitOrder::Lsb0,
            measurement: None,
            phase_scale: None,
            metadata: BTreeMap::new(),
        }
    }

    /// Human-readable register name (defaults to the id).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Encoding kind (defaults to `INT_REGISTER`).
    pub fn encoding(mut self, encoding: EncodingKind) -> Self {
        self.encoding = encoding;
        self
    }

    /// Bit significance order (defaults to `LSB_0`).
    pub fn bit_order(mut self, bit_order: BitOrder) -> Self {
        self.bit_order = bit_order;
        self
    }

    /// Measurement semantics (defaults to the encoding's natural pairing).
    pub fn measurement(mut self, semantics: MeasurementSemantics) -> Self {
        self.measurement = Some(semantics);
        self
    }

    /// Phase resolution (required for phase registers).
    pub fn phase_scale(mut self, scale: PhaseScale) -> Self {
        self.phase_scale = Some(scale);
        self
    }

    /// Attach a metadata entry.
    pub fn metadata(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Finish and validate the descriptor.
    pub fn build(self) -> Result<QuantumDataType> {
        let qdt = QuantumDataType {
            schema: QDT_SCHEMA.to_string(),
            name: self.name.unwrap_or_else(|| self.id.clone()),
            id: self.id,
            width: self.width,
            measurement_semantics: self
                .measurement
                .unwrap_or_else(|| self.encoding.default_semantics()),
            encoding_kind: self.encoding,
            bit_order: self.bit_order,
            phase_scale: self.phase_scale,
            metadata: self.metadata,
        };
        qdt.validate()?;
        Ok(qdt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact artifact from the paper's Listing 2.
    const LISTING_2: &str = r#"
    {
        "$schema": "qdt-core.schema.json",
        "id": "reg_phase",
        "name": "phase",
        "width": 10,
        "encoding_kind": "PHASE_REGISTER",
        "bit_order": "LSB_0",
        "measurement_semantics": "AS_PHASE",
        "phase_scale": "1/1024"
    }
    "#;

    #[test]
    fn listing2_parses_and_validates() {
        let qdt: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
        assert_eq!(qdt.id, "reg_phase");
        assert_eq!(qdt.width, 10);
        assert_eq!(qdt.encoding_kind, EncodingKind::PhaseRegister);
        assert_eq!(qdt.bit_order, BitOrder::Lsb0);
        assert_eq!(qdt.measurement_semantics, MeasurementSemantics::AsPhase);
        assert_eq!(qdt.phase_scale.unwrap().den, 1024);
        qdt.validate().unwrap();
    }

    #[test]
    fn listing2_round_trips_through_builder() {
        let built = QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap();
        let parsed: QuantumDataType = serde_json::from_str(LISTING_2).unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn serialization_uses_dollar_schema_key() {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let json = serde_json::to_value(&qdt).unwrap();
        assert_eq!(json["$schema"], QDT_SCHEMA);
        assert_eq!(json["encoding_kind"], "ISING_SPIN");
        assert_eq!(json["measurement_semantics"], "AS_BOOL");
    }

    #[test]
    fn zero_width_rejected() {
        assert!(QuantumDataType::int_register("r", "r", 0).is_err());
    }

    #[test]
    fn oversized_width_rejected() {
        assert!(QuantumDataType::int_register("r", "r", 64).is_err());
    }

    #[test]
    fn phase_register_requires_scale() {
        let qdt = QdtBuilder::new("p", 4)
            .encoding(EncodingKind::PhaseRegister)
            .measurement(MeasurementSemantics::AsPhase)
            .build();
        assert!(qdt.is_err(), "missing phase_scale must be rejected");
    }

    #[test]
    fn non_phase_register_cannot_use_as_phase() {
        let qdt = QdtBuilder::new("b", 4)
            .encoding(EncodingKind::BoolRegister)
            .measurement(MeasurementSemantics::AsPhase)
            .build();
        assert!(qdt.is_err());
    }

    #[test]
    fn empty_id_rejected() {
        assert!(QuantumDataType::bool_register("  ", "x", 2).is_err());
    }

    #[test]
    fn wire_labels_follow_clbit_order_convention() {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        assert_eq!(
            qdt.wire_labels(),
            vec![
                "ising_vars[0]",
                "ising_vars[1]",
                "ising_vars[2]",
                "ising_vars[3]"
            ]
        );
    }

    #[test]
    fn default_semantics_used_when_not_specified() {
        let qdt = QdtBuilder::new("n", 5).build().unwrap();
        assert_eq!(qdt.measurement_semantics, MeasurementSemantics::AsInt);
        assert_eq!(qdt.name, "n");
    }

    #[test]
    fn unknown_schema_rejected_by_validate() {
        let mut qdt = QuantumDataType::int_register("r", "r", 3).unwrap();
        qdt.schema = "something-else.json".into();
        assert!(qdt.validate().is_err());
    }

    #[test]
    fn metadata_round_trips() {
        let qdt = QdtBuilder::new("m", 3)
            .metadata("provenance", "unit-test")
            .metadata("version", 2)
            .build()
            .unwrap();
        let json = serde_json::to_string(&qdt).unwrap();
        let back: QuantumDataType = serde_json::from_str(&json).unwrap();
        assert_eq!(back.metadata.len(), 2);
        assert_eq!(back, qdt);
    }
}
