//! # qml-types — typed descriptors for a technology-agnostic quantum middle layer
//!
//! This crate implements the descriptor model of *"An HPC-Inspired Blueprint
//! for a Technology-Agnostic Quantum Middle Layer"* (Markidis et al., SC
//! Workshops '25): the artifacts a quantum application emits **once** to state
//! its intent, independent of whether a gate-model simulator, an annealer, or
//! any future backend executes it.
//!
//! The model has four pieces, mirroring the paper's §4:
//!
//! * [`QuantumDataType`] — what a register *means* (width, encoding, bit
//!   order, measurement semantics, phase scale). See [`qdt`].
//! * [`OperatorDescriptor`] — which logical transformation is requested
//!   (rep kind, parameters, cost hints, result schema), with no gates, pulses
//!   or device details. See [`qod`].
//! * [`ContextDescriptor`] — how the program may be executed (engine, shots,
//!   target constraints, QEC policy, annealer settings), orthogonal to the
//!   intent. See [`context`].
//! * [`JobBundle`] — the packaged `job.json` submitted to a backend. See
//!   [`bundle`].
//!
//! Decoding of measured words back into typed values happens exclusively
//! through [`decode`], driven by explicit [`ResultSchema`]s — never by
//! convention.
//!
//! ## Example
//!
//! ```
//! use qml_types::prelude::*;
//!
//! // Intent: 4 Ising decision variables, prepared uniformly and measured.
//! let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4)?;
//! let prep = OperatorDescriptor::builder("prep", RepKind::PrepUniform, "ising_vars").build()?;
//! let meas = OperatorDescriptor::builder("measure", RepKind::Measurement, "ising_vars")
//!     .result_schema(ResultSchema::for_register(&qdt))
//!     .build()?;
//! let bundle = JobBundle::new("demo", vec![qdt], vec![prep, meas]);
//! bundle.validate()?;
//!
//! // Policy: a gate simulator with 4096 shots — swapping this re-targets the
//! // program without touching the intent above.
//! let ctx = ContextDescriptor::for_gate(
//!     ExecConfig::new("gate.aer_simulator").with_samples(4096).with_seed(42),
//! );
//! let job = bundle.with_context(ctx);
//! job.validate()?;
//! # Ok::<(), qml_types::QmlError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod bindings;
pub mod bundle;
pub mod class;
pub mod context;
pub mod cost;
pub mod decode;
pub mod encoding;
pub mod error;
pub mod fleet;
pub mod params;
pub mod qdt;
pub mod qod;
pub mod result_schema;

pub use bindings::BindingSet;
pub use bundle::{JobBundle, JOB_SCHEMA};
pub use class::ServiceClass;
pub use context::{
    AnnealConfig, ContextDescriptor, ExecConfig, ExecOptions, QecConfig, Target, CTX_SCHEMA,
};
pub use cost::{CostHint, MeasuredCost};
pub use decode::{bools_to_spins, decode_word, DecodedCounts, DecodedValue};
pub use encoding::{BitOrder, EncodingKind, MeasurementSemantics, PhaseScale};
pub use error::{QmlError, Result};
pub use fleet::{CapabilityDescriptor, DeviceId, HealthState, JobRequirements};
pub use params::{ParamValue, Params, SymbolRef};
pub use qdt::{QdtBuilder, QuantumDataType, QDT_SCHEMA};
pub use qod::{OperatorDescriptor, QodBuilder, RepKind, QOD_SCHEMA};
pub use result_schema::{MeasurementBasis, ResultSchema};

/// Convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use crate::bindings::BindingSet;
    pub use crate::bundle::JobBundle;
    pub use crate::class::ServiceClass;
    pub use crate::context::{AnnealConfig, ContextDescriptor, ExecConfig, QecConfig, Target};
    pub use crate::cost::CostHint;
    pub use crate::decode::{decode_word, DecodedCounts, DecodedValue};
    pub use crate::encoding::{BitOrder, EncodingKind, MeasurementSemantics, PhaseScale};
    pub use crate::error::{QmlError, Result};
    pub use crate::fleet::{CapabilityDescriptor, DeviceId, HealthState, JobRequirements};
    pub use crate::params::{ParamValue, Params};
    pub use crate::qdt::QuantumDataType;
    pub use crate::qod::{OperatorDescriptor, RepKind};
    pub use crate::result_schema::{MeasurementBasis, ResultSchema};
}

#[cfg(test)]
mod proptests {
    use super::prelude::*;
    use proptest::prelude::*;

    fn arb_encoding() -> impl Strategy<Value = EncodingKind> {
        prop_oneof![
            Just(EncodingKind::IntRegister),
            Just(EncodingKind::BoolRegister),
            Just(EncodingKind::IsingSpin),
            Just(EncodingKind::SignedIntRegister),
        ]
    }

    proptest! {
        /// Any QDT built through the builder serializes to JSON and back to an
        /// identical descriptor.
        #[test]
        fn qdt_json_round_trip(width in 1usize..=63, encoding in arb_encoding(), msb in any::<bool>()) {
            let qdt = qml_types_builder(width, encoding, msb);
            let json = serde_json::to_string(&qdt).unwrap();
            let back: QuantumDataType = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, qdt);
        }

        /// Decoding an integer word and re-encoding its bits is the identity
        /// for every width and bit order.
        #[test]
        fn int_decode_matches_direct_binary(width in 1usize..=16, value in 0u64..65536, msb in any::<bool>()) {
            let value = value & ((1u64 << width) - 1);
            let order = if msb { BitOrder::Msb0 } else { BitOrder::Lsb0 };
            let qdt = QuantumDataType::builder("r", width).bit_order(order).build().unwrap();
            let mut schema = ResultSchema::for_register(&qdt);
            schema.bit_significance = order;
            // Build the word: character i is classical bit i.
            let word: String = (0..width)
                .map(|i| {
                    let exp = order.weight_exponent(i, width);
                    if (value >> exp) & 1 == 1 { '1' } else { '0' }
                })
                .collect();
            let decoded = decode_word(&word, &schema, &qdt).unwrap();
            prop_assert_eq!(decoded, DecodedValue::Int(value));
        }

        /// Binding never introduces new unbound symbols, and binding all
        /// listed symbols produces a fully bound parameter set.
        #[test]
        fn binding_is_monotone(names in proptest::collection::vec("[a-z]{1,8}", 1..5)) {
            let mut params = Params::new();
            for (i, name) in names.iter().enumerate() {
                params.insert(format!("p{i}"), ParamValue::symbol(name.clone()));
            }
            let before = params.unbound_symbols();
            let bindings: std::collections::BTreeMap<String, ParamValue> = before
                .iter()
                .map(|n| (n.clone(), ParamValue::Float(1.0)))
                .collect();
            let bound = params.bind(&bindings);
            prop_assert!(bound.unbound_symbols().is_empty());
        }
    }

    fn qml_types_builder(width: usize, encoding: EncodingKind, msb: bool) -> QuantumDataType {
        QuantumDataType::builder("reg", width)
            .encoding(encoding)
            .bit_order(if msb { BitOrder::Msb0 } else { BitOrder::Lsb0 })
            .build()
            .unwrap()
    }
}
