//! Quantum operator descriptors (paper §4.2, Listing 3).
//!
//! An operator descriptor names a *logical transformation* — a QFT, a modular
//! adder, an Ising cost layer — with its parameters, an optional
//! device-independent [`CostHint`] and an optional
//! [`ResultSchema`]. It contains no gates,
//! pulses or device details; lower layers decide how to realize it.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt;

use crate::cost::CostHint;
use crate::error::{QmlError, Result};
use crate::params::{ParamValue, Params};
use crate::qdt::QuantumDataType;
use crate::result_schema::ResultSchema;

/// Name of the JSON Schema governing operator descriptor artifacts.
pub const QOD_SCHEMA: &str = "qod.schema.json";

/// Identifies the logical transformation an operator descriptor requests.
///
/// Known representation kinds serialize to the SCREAMING_SNAKE_CASE names used
/// in the paper (e.g. `"QFT_TEMPLATE"`, `"ISING_PROBLEM"`). Unknown kinds are
/// preserved verbatim via [`RepKind::Custom`] so third-party libraries can
/// extend the vocabulary without breaking interchange — the paper's
/// "minimal yet extendable" requirement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RepKind {
    /// Quantum Fourier Transform as a realizable template.
    QftTemplate,
    /// Uniform superposition preparation (Hadamard layer on every carrier).
    PrepUniform,
    /// QAOA cost layer: phase separation under an Ising Hamiltonian, angle γ.
    IsingCostPhase,
    /// QAOA mixer layer: RX(2β) on every carrier.
    MixerRx,
    /// Explicit measurement of a register (carries the result schema).
    Measurement,
    /// A complete Ising/Binary-Quadratic-Model problem (h, J) for annealers.
    IsingProblem,
    /// In-place integer addition template.
    AdderTemplate,
    /// Modular adder template (Shor-style arithmetic primitive).
    ModularAdderTemplate,
    /// Integer comparator template.
    ComparatorTemplate,
    /// Controlled-phase / kickback gadget.
    ControlledPhase,
    /// SWAP-test overlap estimation gadget.
    SwapTest,
    /// Quantum phase estimation scaffold.
    QpeTemplate,
    /// Amplitude-encoding state preparation.
    AmplitudeEncoding,
    /// Angle-encoding state preparation.
    AngleEncoding,
    /// A bare layer of Hadamard gates.
    HadamardLayer,
    /// Any other representation kind, preserved verbatim.
    Custom(String),
}

impl RepKind {
    /// Canonical string form (what appears in the JSON artifact).
    pub fn as_str(&self) -> &str {
        match self {
            RepKind::QftTemplate => "QFT_TEMPLATE",
            RepKind::PrepUniform => "PREP_UNIFORM",
            RepKind::IsingCostPhase => "ISING_COST_PHASE",
            RepKind::MixerRx => "MIXER_RX",
            RepKind::Measurement => "MEASUREMENT",
            RepKind::IsingProblem => "ISING_PROBLEM",
            RepKind::AdderTemplate => "ADDER_TEMPLATE",
            RepKind::ModularAdderTemplate => "MODULAR_ADDER_TEMPLATE",
            RepKind::ComparatorTemplate => "COMPARATOR_TEMPLATE",
            RepKind::ControlledPhase => "CONTROLLED_PHASE",
            RepKind::SwapTest => "SWAP_TEST",
            RepKind::QpeTemplate => "QPE_TEMPLATE",
            RepKind::AmplitudeEncoding => "AMPLITUDE_ENCODING",
            RepKind::AngleEncoding => "ANGLE_ENCODING",
            RepKind::HadamardLayer => "HADAMARD_LAYER",
            RepKind::Custom(name) => name,
        }
    }

    /// Parse from the canonical string form; unknown strings become
    /// [`RepKind::Custom`].
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "QFT_TEMPLATE" => RepKind::QftTemplate,
            "PREP_UNIFORM" => RepKind::PrepUniform,
            "ISING_COST_PHASE" => RepKind::IsingCostPhase,
            "MIXER_RX" => RepKind::MixerRx,
            "MEASUREMENT" => RepKind::Measurement,
            "ISING_PROBLEM" => RepKind::IsingProblem,
            "ADDER_TEMPLATE" => RepKind::AdderTemplate,
            "MODULAR_ADDER_TEMPLATE" => RepKind::ModularAdderTemplate,
            "COMPARATOR_TEMPLATE" => RepKind::ComparatorTemplate,
            "CONTROLLED_PHASE" => RepKind::ControlledPhase,
            "SWAP_TEST" => RepKind::SwapTest,
            "QPE_TEMPLATE" => RepKind::QpeTemplate,
            "AMPLITUDE_ENCODING" => RepKind::AmplitudeEncoding,
            "ANGLE_ENCODING" => RepKind::AngleEncoding,
            "HADAMARD_LAYER" => RepKind::HadamardLayer,
            other => RepKind::Custom(other.to_string()),
        }
    }

    /// True for kinds that describe a measurement/readout rather than a
    /// unitary transformation.
    pub fn is_measurement(&self) -> bool {
        matches!(self, RepKind::Measurement)
    }

    /// True for kinds that describe a whole optimization problem rather than a
    /// circuit fragment (consumed by annealing backends).
    pub fn is_problem(&self) -> bool {
        matches!(self, RepKind::IsingProblem)
    }

    /// True if the named parameter of this representation kind is a
    /// **continuous angle** that realization hooks can keep symbolic through
    /// lowering and transpilation (late binding against a parametric plan).
    ///
    /// Everything else — approximation degrees, edge lists, weights, flags —
    /// is *structural*: it changes the circuit's shape, so a symbol there
    /// must be substituted eagerly before lowering.
    ///
    /// This table must mirror the realization rules in the gate backend's
    /// `lower_to_circuit` (qml-backends); both directions are pinned by
    /// tests there (`unbound_symbols_lower_to_a_parametric_circuit`,
    /// `symbolic_angle_encoding_lowers_symbolically`,
    /// `symbolic_structural_params_fail_loudly`) — extend those alongside
    /// any new entry here.
    pub fn is_angle_param(&self, key: &str) -> bool {
        match self {
            RepKind::IsingCostPhase => key == "gamma",
            RepKind::MixerRx => key == "beta",
            RepKind::AngleEncoding => key == "angles",
            _ => false,
        }
    }
}

impl fmt::Display for RepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for RepKind {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for RepKind {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        if s.trim().is_empty() {
            return Err(D::Error::custom("rep_kind must be non-empty"));
        }
        Ok(RepKind::from_str_lossy(&s))
    }
}

/// A quantum operator descriptor: the logical transformation to perform,
/// independent of its realization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorDescriptor {
    /// JSON Schema identifier used to validate this artifact.
    #[serde(rename = "$schema", default = "default_qod_schema")]
    pub schema: String,
    /// Human-readable operator name (e.g. `"QFT"`).
    pub name: String,
    /// The logical transformation requested.
    pub rep_kind: RepKind,
    /// Id of the quantum data type the operator consumes.
    pub domain_qdt: String,
    /// Id of the quantum data type the operator produces (equal to
    /// `domain_qdt` for in-place transformations).
    pub codomain_qdt: String,
    /// Operator parameters (may contain late-bound symbols).
    #[serde(default, skip_serializing_if = "Params::is_empty")]
    pub params: Params,
    /// Advisory device-independent cost estimate.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cost_hint: Option<CostHint>,
    /// Decoding rules for the readout this operator produces (if any).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub result_schema: Option<ResultSchema>,
    /// Free-form metadata (provenance, library version, ...).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub metadata: BTreeMap<String, ParamValue>,
}

fn default_qod_schema() -> String {
    QOD_SCHEMA.to_string()
}

impl OperatorDescriptor {
    /// Start building an operator descriptor acting in place on `register`.
    pub fn builder(
        name: impl Into<String>,
        rep_kind: RepKind,
        register: impl Into<String>,
    ) -> QodBuilder {
        let register = register.into();
        QodBuilder {
            name: name.into(),
            rep_kind,
            domain_qdt: register.clone(),
            codomain_qdt: register,
            params: Params::new(),
            cost_hint: None,
            result_schema: None,
            metadata: BTreeMap::new(),
        }
    }

    /// Structural validation independent of the surrounding bundle.
    pub fn validate(&self) -> Result<()> {
        if self.name.trim().is_empty() {
            return Err(QmlError::Validation(
                "operator name must be non-empty".into(),
            ));
        }
        if self.domain_qdt.trim().is_empty() || self.codomain_qdt.trim().is_empty() {
            return Err(QmlError::Validation(format!(
                "operator `{}` must reference domain and codomain registers",
                self.name
            )));
        }
        if self.schema != QOD_SCHEMA {
            return Err(QmlError::Validation(format!(
                "operator `{}` references unknown schema `{}` (expected `{QOD_SCHEMA}`)",
                self.name, self.schema
            )));
        }
        if self.rep_kind.is_measurement() && self.result_schema.is_none() {
            return Err(QmlError::Validation(format!(
                "measurement operator `{}` must attach an explicit result_schema \
                 (implicit measurement interpretation is forbidden)",
                self.name
            )));
        }
        Ok(())
    }

    /// Validate this descriptor against the register it references.
    pub fn validate_against(
        &self,
        domain: &QuantumDataType,
        codomain: &QuantumDataType,
    ) -> Result<()> {
        self.validate()?;
        if domain.id != self.domain_qdt {
            return Err(QmlError::UnknownRegister(self.domain_qdt.clone()));
        }
        if codomain.id != self.codomain_qdt {
            return Err(QmlError::UnknownRegister(self.codomain_qdt.clone()));
        }
        if let Some(schema) = &self.result_schema {
            schema.validate_against(codomain)?;
        }
        Ok(())
    }

    /// True if the operator transforms a register in place.
    pub fn is_in_place(&self) -> bool {
        self.domain_qdt == self.codomain_qdt
    }

    /// Names of unbound symbolic parameters.
    pub fn unbound_symbols(&self) -> Vec<String> {
        self.params.unbound_symbols()
    }

    /// Return a copy with symbolic parameters bound from `bindings`.
    pub fn bind(&self, bindings: &BTreeMap<String, ParamValue>) -> OperatorDescriptor {
        OperatorDescriptor {
            params: self.params.bind(bindings),
            ..self.clone()
        }
    }
}

/// Builder for [`OperatorDescriptor`].
#[derive(Debug, Clone)]
pub struct QodBuilder {
    name: String,
    rep_kind: RepKind,
    domain_qdt: String,
    codomain_qdt: String,
    params: Params,
    cost_hint: Option<CostHint>,
    result_schema: Option<ResultSchema>,
    metadata: BTreeMap<String, ParamValue>,
}

impl QodBuilder {
    /// Set a different codomain register (out-of-place operator).
    pub fn codomain(mut self, register: impl Into<String>) -> Self {
        self.codomain_qdt = register.into();
        self
    }

    /// Add one parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key, value);
        self
    }

    /// Replace the whole parameter set.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Attach a cost hint.
    pub fn cost_hint(mut self, hint: CostHint) -> Self {
        self.cost_hint = Some(hint);
        self
    }

    /// Attach a result schema.
    pub fn result_schema(mut self, schema: ResultSchema) -> Self {
        self.result_schema = Some(schema);
        self
    }

    /// Attach a metadata entry.
    pub fn metadata(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Finish and validate the descriptor.
    pub fn build(self) -> Result<OperatorDescriptor> {
        let qod = OperatorDescriptor {
            schema: QOD_SCHEMA.to_string(),
            name: self.name,
            rep_kind: self.rep_kind,
            domain_qdt: self.domain_qdt,
            codomain_qdt: self.codomain_qdt,
            params: self.params,
            cost_hint: self.cost_hint,
            result_schema: self.result_schema,
            metadata: self.metadata,
        };
        qod.validate()?;
        Ok(qod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::MeasurementSemantics;
    use crate::result_schema::MeasurementBasis;

    /// The exact artifact from the paper's Listing 3.
    const LISTING_3: &str = r#"
    {
        "$schema": "qod.schema.json",
        "name": "QFT",
        "rep_kind": "QFT_TEMPLATE",
        "domain_qdt": "reg_phase",
        "codomain_qdt": "reg_phase",
        "params": { "approx_degree": 0, "do_swaps": true, "inverse": false },
        "cost_hint": { "twoq": 45, "depth": 100 },
        "result_schema": {
            "basis": "Z",
            "datatype": "AS_PHASE",
            "bit_significance": "LSB_0",
            "clbit_order": [
                "reg_phase[0]", "reg_phase[1]", "reg_phase[2]",
                "reg_phase[3]", "reg_phase[4]", "reg_phase[5]",
                "reg_phase[6]", "reg_phase[7]", "reg_phase[8]",
                "reg_phase[9]"
            ]
        }
    }"#;

    #[test]
    fn listing3_parses_and_validates() {
        let qod: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
        assert_eq!(qod.name, "QFT");
        assert_eq!(qod.rep_kind, RepKind::QftTemplate);
        assert!(qod.is_in_place());
        assert_eq!(qod.params.require_u64("approx_degree").unwrap(), 0);
        assert!(qod.params.bool_or("do_swaps", false));
        assert!(!qod.params.bool_or("inverse", true));
        assert_eq!(qod.cost_hint.unwrap().twoq, Some(45));
        let schema = qod.result_schema.as_ref().unwrap();
        assert_eq!(schema.datatype, MeasurementSemantics::AsPhase);
        assert_eq!(schema.basis, MeasurementBasis::Z);
        qod.validate().unwrap();
    }

    #[test]
    fn listing3_validates_against_its_register() {
        let qod: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
        let reg = QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap();
        qod.validate_against(&reg, &reg).unwrap();
    }

    #[test]
    fn rep_kind_round_trip_known_and_custom() {
        for kind in [
            RepKind::QftTemplate,
            RepKind::PrepUniform,
            RepKind::IsingCostPhase,
            RepKind::MixerRx,
            RepKind::Measurement,
            RepKind::IsingProblem,
            RepKind::ModularAdderTemplate,
            RepKind::Custom("CV_GAUSSIAN_TRANSFORM".into()),
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: RepKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn unknown_rep_kind_preserved_verbatim() {
        let back: RepKind = serde_json::from_str("\"PULSE_TEMPLATE\"").unwrap();
        assert_eq!(back, RepKind::Custom("PULSE_TEMPLATE".into()));
        assert_eq!(serde_json::to_string(&back).unwrap(), "\"PULSE_TEMPLATE\"");
    }

    #[test]
    fn empty_rep_kind_rejected() {
        let parsed: std::result::Result<RepKind, _> = serde_json::from_str("\"\"");
        assert!(parsed.is_err());
    }

    #[test]
    fn builder_round_trip() {
        let qod = OperatorDescriptor::builder("QFT", RepKind::QftTemplate, "reg_phase")
            .param("approx_degree", 0)
            .param("do_swaps", true)
            .param("inverse", false)
            .cost_hint(CostHint::gates(45, 100))
            .build()
            .unwrap();
        let json = serde_json::to_string(&qod).unwrap();
        let back: OperatorDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, qod);
    }

    #[test]
    fn measurement_without_result_schema_rejected() {
        let qod = OperatorDescriptor::builder("readout", RepKind::Measurement, "reg").build();
        assert!(
            qod.is_err(),
            "implicit measurement interpretation is forbidden"
        );
    }

    #[test]
    fn measurement_with_schema_accepted() {
        let reg = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let qod = OperatorDescriptor::builder("readout", RepKind::Measurement, "ising_vars")
            .result_schema(ResultSchema::for_register(&reg))
            .build()
            .unwrap();
        qod.validate_against(&reg, &reg).unwrap();
    }

    #[test]
    fn mismatched_register_rejected() {
        let qod: OperatorDescriptor = serde_json::from_str(LISTING_3).unwrap();
        let other = QuantumDataType::phase_register("other", "o", 10).unwrap();
        assert!(matches!(
            qod.validate_against(&other, &other),
            Err(QmlError::UnknownRegister(_))
        ));
    }

    #[test]
    fn late_binding_through_descriptor() {
        let qod = OperatorDescriptor::builder("cost", RepKind::IsingCostPhase, "ising_vars")
            .param("gamma", ParamValue::symbol("gamma_0"))
            .build()
            .unwrap();
        assert_eq!(qod.unbound_symbols(), vec!["gamma_0".to_string()]);
        let mut bindings = BTreeMap::new();
        bindings.insert("gamma_0".to_string(), ParamValue::Float(0.42));
        let bound = qod.bind(&bindings);
        assert!(bound.unbound_symbols().is_empty());
        assert!((bound.params.require_f64("gamma").unwrap() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn empty_name_rejected() {
        let qod = OperatorDescriptor::builder(" ", RepKind::PrepUniform, "reg").build();
        assert!(qod.is_err());
    }

    #[test]
    fn out_of_place_operator() {
        let qod = OperatorDescriptor::builder("copy_add", RepKind::AdderTemplate, "a")
            .codomain("b")
            .build()
            .unwrap();
        assert!(!qod.is_in_place());
    }
}
