//! Fleet vocabulary: device identities, capability descriptors, per-job
//! requirements, and device health states.
//!
//! A production service does not run one monolithic backend per plane — it
//! runs a *fleet* of devices behind each backend plane (several gate
//! simulators of different widths, several annealers with different schedule
//! support), and a scheduler must know which devices *can* serve a job
//! before asking which one *should*. This module holds the shared
//! vocabulary: a [`DeviceId`], a [`CapabilityDescriptor`] declaring what a
//! device can realize, the [`JobRequirements`] a bundle derives for matching
//! against it, and the [`HealthState`] ladder failure tracking moves devices
//! along. The routing policy itself lives in the serving tier; these types
//! are the contract every layer agrees on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bundle::JobBundle;

/// Stable identifier of one device within a backend plane (e.g.
/// `"gate-sim-a"`, `"qml-gate-simulator#0"`). Unique across the fleet.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub String);

impl DeviceId {
    /// A device id from anything string-like.
    pub fn new(id: impl Into<String>) -> Self {
        DeviceId(id.into())
    }

    /// The id as a borrowed string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceId {
    fn from(id: &str) -> Self {
        DeviceId(id.to_string())
    }
}

impl From<String> for DeviceId {
    fn from(id: String) -> Self {
        DeviceId(id)
    }
}

/// What one device can realize. `None` fields are unconstrained — the
/// default descriptor accepts every job its backend plane can realize.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CapabilityDescriptor {
    /// Largest register width (total carriers) the device can hold.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub max_qubits: Option<usize>,
    /// Transpiler optimization levels the device supports (gate planes) /
    /// annealer schedule classes (anneal planes, on the same 0–3 scale).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub opt_levels: Option<Vec<u8>>,
}

impl CapabilityDescriptor {
    /// An unconstrained descriptor: the device serves anything its plane can.
    pub fn unlimited() -> Self {
        CapabilityDescriptor::default()
    }

    /// Cap the register width the device can hold, builder-style.
    pub fn with_max_qubits(mut self, max_qubits: usize) -> Self {
        self.max_qubits = Some(max_qubits);
        self
    }

    /// Restrict the supported optimization levels / schedule classes,
    /// builder-style.
    pub fn with_opt_levels(mut self, levels: impl Into<Vec<u8>>) -> Self {
        self.opt_levels = Some(levels.into());
        self
    }

    /// True if a job with the given requirements fits this device.
    pub fn supports(&self, req: &JobRequirements) -> bool {
        if self.max_qubits.is_some_and(|max| req.qubits > max) {
            return false;
        }
        if self
            .opt_levels
            .as_ref()
            .is_some_and(|levels| !levels.contains(&req.opt_level))
        {
            return false;
        }
        true
    }
}

/// What one job demands of a device, derived from its bundle at submission
/// and carried with the job so routing (and re-routing after a failure)
/// never re-parses descriptors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRequirements {
    /// Total register width the job declares (see
    /// [`JobBundle::total_width`]).
    pub qubits: usize,
    /// The transpiler optimization level the context requests (default 1).
    pub opt_level: u8,
}

impl JobRequirements {
    /// Derive the requirements of a bundle: its declared register width and
    /// the optimization level of its execution context (contextless bundles
    /// require the default level).
    pub fn of(bundle: &JobBundle) -> Self {
        let opt_level = bundle
            .context
            .as_ref()
            .and_then(|c| c.exec.as_ref())
            .map(|e| e.options.optimization_level)
            .unwrap_or(1);
        JobRequirements {
            qubits: bundle.total_width(),
            opt_level,
        }
    }
}

/// Where a device sits on the health ladder. Driven by observed
/// [`DeviceFault`](crate::QmlError::DeviceFault) outcomes: failures push a
/// device down the ladder, a successful execution (e.g. a probe) restores it
/// to [`HealthState::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Recent device faults observed; still routable, deprioritized.
    Degraded,
    /// Fault streak exceeded the plane's threshold; receives no dispatches
    /// except recovery probes.
    Down,
}

impl HealthState {
    /// Lowercase schema name (stable; greppable in dumps).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextDescriptor, ExecConfig};
    use crate::qdt::QuantumDataType;

    fn bundle(width: usize) -> JobBundle {
        JobBundle::new(
            "caps-test",
            vec![QuantumDataType::bool_register("reg_q", "q", width).unwrap()],
            vec![],
        )
    }

    #[test]
    fn unlimited_descriptor_accepts_everything() {
        let caps = CapabilityDescriptor::unlimited();
        for qubits in [0, 1, 64, 4096] {
            for opt_level in 0..=3 {
                assert!(caps.supports(&JobRequirements { qubits, opt_level }));
            }
        }
    }

    #[test]
    fn width_and_opt_level_caps_are_enforced() {
        let caps = CapabilityDescriptor::unlimited()
            .with_max_qubits(8)
            .with_opt_levels([0, 1]);
        assert!(caps.supports(&JobRequirements {
            qubits: 8,
            opt_level: 1
        }));
        assert!(!caps.supports(&JobRequirements {
            qubits: 9,
            opt_level: 1
        }));
        assert!(!caps.supports(&JobRequirements {
            qubits: 4,
            opt_level: 2
        }));
    }

    #[test]
    fn requirements_derive_from_bundle_width_and_context() {
        let plain = bundle(6);
        let req = JobRequirements::of(&plain);
        assert_eq!(req.qubits, 6);
        assert_eq!(req.opt_level, 1, "contextless bundles use the default");

        let tuned = bundle(6).with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator").with_optimization_level(3),
        ));
        assert_eq!(JobRequirements::of(&tuned).opt_level, 3);
    }

    #[test]
    fn health_ladder_names_are_stable() {
        assert_eq!(HealthState::Healthy.to_string(), "healthy");
        assert_eq!(HealthState::Degraded.to_string(), "degraded");
        assert_eq!(HealthState::Down.to_string(), "down");
    }

    #[test]
    fn device_fault_is_distinguished_from_job_errors() {
        use crate::error::QmlError;
        assert!(QmlError::DeviceFault("link lost".into()).is_device_fault());
        assert!(!QmlError::Validation("bad width".into()).is_device_fault());
        let msg = QmlError::DeviceFault("link lost".into()).to_string();
        assert!(msg.contains("device fault"));
    }

    #[test]
    fn fleet_types_serialize() {
        let caps = CapabilityDescriptor::unlimited().with_max_qubits(16);
        let json = serde_json::to_string(&caps).unwrap();
        let back: CapabilityDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, caps);
        let id = DeviceId::new("gate-sim-a");
        let back: DeviceId = serde_json::from_str(&serde_json::to_string(&id).unwrap()).unwrap();
        assert_eq!(back, id);
    }
}
