//! Register encodings, bit orders, measurement semantics and phase scales.
//!
//! These enums are the vocabulary of the *quantum data type* descriptor
//! (paper §4.1): they tell every component what a register **means** —
//! integer, Boolean/QUBO variable, Ising spin, fixed-point phase — without
//! prescribing how a backend realizes it (qubits, qumodes, anneal variables).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{QmlError, Result};

/// Interpretation of the computational-basis index of a register.
///
/// The serialized form uses the SCREAMING_SNAKE_CASE names from the paper's
/// JSON listings (e.g. `"PHASE_REGISTER"`, `"ISING_SPIN"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncodingKind {
    /// Unsigned integer register: basis state |k⟩ decodes to the integer k.
    #[serde(rename = "INT_REGISTER")]
    IntRegister,
    /// Signed (two's-complement) integer register.
    #[serde(rename = "SIGNED_INT_REGISTER")]
    SignedIntRegister,
    /// Boolean register: each carrier holds a {0,1} label, used for control
    /// logic and QUBO variables.
    #[serde(rename = "BOOL_REGISTER")]
    BoolRegister,
    /// Fixed-point phase accumulator: index k denotes the phase fraction
    /// k·`phase_scale` of a full turn.
    #[serde(rename = "PHASE_REGISTER")]
    PhaseRegister,
    /// Logical Ising spins s ∈ {−1, +1} represented as Boolean readouts
    /// (0 ↦ +1, 1 ↦ −1 by the usual convention).
    #[serde(rename = "ISING_SPIN")]
    IsingSpin,
    /// Amplitude-encoded real vector (state-preparation targets).
    #[serde(rename = "AMPLITUDE_REGISTER")]
    AmplitudeRegister,
    /// Angle-encoded features (one rotation angle per carrier).
    #[serde(rename = "ANGLE_REGISTER")]
    AngleRegister,
}

impl EncodingKind {
    /// All encodings known to this version of the middle layer.
    pub const ALL: [EncodingKind; 7] = [
        EncodingKind::IntRegister,
        EncodingKind::SignedIntRegister,
        EncodingKind::BoolRegister,
        EncodingKind::PhaseRegister,
        EncodingKind::IsingSpin,
        EncodingKind::AmplitudeRegister,
        EncodingKind::AngleRegister,
    ];

    /// The measurement semantics that naturally pairs with this encoding.
    pub fn default_semantics(self) -> MeasurementSemantics {
        match self {
            EncodingKind::IntRegister | EncodingKind::SignedIntRegister => {
                MeasurementSemantics::AsInt
            }
            EncodingKind::BoolRegister => MeasurementSemantics::AsBool,
            EncodingKind::PhaseRegister => MeasurementSemantics::AsPhase,
            EncodingKind::IsingSpin => MeasurementSemantics::AsBool,
            EncodingKind::AmplitudeRegister | EncodingKind::AngleRegister => {
                MeasurementSemantics::AsRaw
            }
        }
    }

    /// Canonical SCREAMING_SNAKE_CASE name used in JSON artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            EncodingKind::IntRegister => "INT_REGISTER",
            EncodingKind::SignedIntRegister => "SIGNED_INT_REGISTER",
            EncodingKind::BoolRegister => "BOOL_REGISTER",
            EncodingKind::PhaseRegister => "PHASE_REGISTER",
            EncodingKind::IsingSpin => "ISING_SPIN",
            EncodingKind::AmplitudeRegister => "AMPLITUDE_REGISTER",
            EncodingKind::AngleRegister => "ANGLE_REGISTER",
        }
    }
}

impl fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Significance order for mapping carriers to bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BitOrder {
    /// Index i has weight 2^i (least-significant bit is carrier 0).
    #[default]
    #[serde(rename = "LSB_0")]
    Lsb0,
    /// Index 0 is the most-significant bit.
    #[serde(rename = "MSB_0")]
    Msb0,
}

impl BitOrder {
    /// Canonical JSON name.
    pub fn as_str(self) -> &'static str {
        match self {
            BitOrder::Lsb0 => "LSB_0",
            BitOrder::Msb0 => "MSB_0",
        }
    }

    /// Weight (as a power-of-two exponent) of carrier `index` in a register of
    /// `width` carriers.
    pub fn weight_exponent(self, index: usize, width: usize) -> usize {
        match self {
            BitOrder::Lsb0 => index,
            BitOrder::Msb0 => width - 1 - index,
        }
    }
}

impl fmt::Display for BitOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a Z-basis readout of the register should be interpreted downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasurementSemantics {
    /// Decode the measured word as an unsigned integer.
    #[serde(rename = "AS_INT")]
    AsInt,
    /// Decode each carrier as a {0,1} label.
    #[serde(rename = "AS_BOOL")]
    AsBool,
    /// Decode the measured word as a phase fraction (× `phase_scale`).
    #[serde(rename = "AS_PHASE")]
    AsPhase,
    /// Decode each carrier as an Ising spin (0 ↦ +1, 1 ↦ −1).
    #[serde(rename = "AS_SPIN")]
    AsSpin,
    /// Leave the word uninterpreted (raw bitstring).
    #[serde(rename = "AS_RAW")]
    AsRaw,
}

impl MeasurementSemantics {
    /// Canonical JSON name.
    pub fn as_str(self) -> &'static str {
        match self {
            MeasurementSemantics::AsInt => "AS_INT",
            MeasurementSemantics::AsBool => "AS_BOOL",
            MeasurementSemantics::AsPhase => "AS_PHASE",
            MeasurementSemantics::AsSpin => "AS_SPIN",
            MeasurementSemantics::AsRaw => "AS_RAW",
        }
    }
}

impl fmt::Display for MeasurementSemantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rational phase resolution such as `1/1024`, mapping an observed integer
/// `k` to the unitless phase fraction `k · num / den` of a full turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseScale {
    /// Numerator of the per-step phase fraction.
    pub num: u64,
    /// Denominator of the per-step phase fraction (must be non-zero).
    pub den: u64,
}

impl PhaseScale {
    /// Create a phase scale `num/den`. Fails if `den == 0`.
    pub fn new(num: u64, den: u64) -> Result<Self> {
        if den == 0 {
            return Err(QmlError::Validation(
                "phase_scale denominator must be non-zero".into(),
            ));
        }
        Ok(PhaseScale { num, den })
    }

    /// The natural scale for an `n`-carrier phase register: `1/2^n`.
    pub fn for_width(width: usize) -> Result<Self> {
        if width == 0 || width >= 64 {
            return Err(QmlError::Validation(format!(
                "phase register width {width} out of range (1..=63)"
            )));
        }
        PhaseScale::new(1, 1u64 << width)
    }

    /// Phase fraction (in turns) of the observed integer `k`.
    pub fn fraction(&self, k: u64) -> f64 {
        (k as f64) * (self.num as f64) / (self.den as f64)
    }

    /// Phase in radians of the observed integer `k`.
    pub fn radians(&self, k: u64) -> f64 {
        self.fraction(k) * std::f64::consts::TAU
    }

    /// Parse the `"1/1024"` textual form used by the paper's JSON artifacts.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        if let Some((num, den)) = text.split_once('/') {
            let num: u64 = num.trim().parse().map_err(|_| {
                QmlError::Validation(format!("bad phase_scale numerator in `{text}`"))
            })?;
            let den: u64 = den.trim().parse().map_err(|_| {
                QmlError::Validation(format!("bad phase_scale denominator in `{text}`"))
            })?;
            PhaseScale::new(num, den)
        } else {
            let num: u64 = text
                .parse()
                .map_err(|_| QmlError::Validation(format!("bad phase_scale `{text}`")))?;
            PhaseScale::new(num, 1)
        }
    }
}

impl fmt::Display for PhaseScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl Serialize for PhaseScale {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(&format!("{}/{}", self.num, self.den))
    }
}

impl<'de> Deserialize<'de> for PhaseScale {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        PhaseScale::parse(&text).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip_json() {
        for kind in EncodingKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.as_str()));
            let back: EncodingKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn default_semantics_pairing() {
        assert_eq!(
            EncodingKind::PhaseRegister.default_semantics(),
            MeasurementSemantics::AsPhase
        );
        assert_eq!(
            EncodingKind::IsingSpin.default_semantics(),
            MeasurementSemantics::AsBool
        );
        assert_eq!(
            EncodingKind::IntRegister.default_semantics(),
            MeasurementSemantics::AsInt
        );
    }

    #[test]
    fn bit_order_weights() {
        assert_eq!(BitOrder::Lsb0.weight_exponent(0, 4), 0);
        assert_eq!(BitOrder::Lsb0.weight_exponent(3, 4), 3);
        assert_eq!(BitOrder::Msb0.weight_exponent(0, 4), 3);
        assert_eq!(BitOrder::Msb0.weight_exponent(3, 4), 0);
    }

    #[test]
    fn bit_order_serialized_names() {
        assert_eq!(serde_json::to_string(&BitOrder::Lsb0).unwrap(), "\"LSB_0\"");
        assert_eq!(serde_json::to_string(&BitOrder::Msb0).unwrap(), "\"MSB_0\"");
    }

    #[test]
    fn phase_scale_parse_fraction() {
        let s = PhaseScale::parse("1/1024").unwrap();
        assert_eq!(s.num, 1);
        assert_eq!(s.den, 1024);
        assert!((s.fraction(512) - 0.5).abs() < 1e-12);
        assert!((s.radians(1024) - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn phase_scale_parse_integer() {
        let s = PhaseScale::parse("2").unwrap();
        assert_eq!(s.num, 2);
        assert_eq!(s.den, 1);
    }

    #[test]
    fn phase_scale_rejects_zero_denominator() {
        assert!(PhaseScale::new(1, 0).is_err());
        assert!(PhaseScale::parse("1/0").is_err());
    }

    #[test]
    fn phase_scale_for_width() {
        let s = PhaseScale::for_width(10).unwrap();
        assert_eq!(s.den, 1024);
        assert!(PhaseScale::for_width(0).is_err());
        assert!(PhaseScale::for_width(64).is_err());
    }

    #[test]
    fn phase_scale_json_matches_paper_listing() {
        let s = PhaseScale::new(1, 1024).unwrap();
        assert_eq!(serde_json::to_string(&s).unwrap(), "\"1/1024\"");
        let back: PhaseScale = serde_json::from_str("\"1/1024\"").unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn phase_scale_bad_text_rejected() {
        assert!(PhaseScale::parse("one half").is_err());
        assert!(PhaseScale::parse("1/x").is_err());
    }
}
