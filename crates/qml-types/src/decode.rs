//! Decoding of measured words according to explicit result schemas.
//!
//! The middle layer's composability principle requires that "results need
//! unambiguous decoding rules (e.g. bit or mode ordering, datatype
//! interpretation)" (paper §3). This module is the single place where a raw
//! classical word becomes a typed value — there is no default interpretation
//! anywhere else in the stack.
//!
//! # Bitstring convention
//!
//! A measured word is a string of `'0'`/`'1'` characters where the character
//! at position `i` is the outcome of **classical bit `i`** — i.e. of the wire
//! listed at `clbit_order[i]` in the result schema. Bit significance is then
//! applied per the schema's `bit_significance` field: with `LSB_0`, classical
//! bit `i` has weight `2^i`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::encoding::{BitOrder, MeasurementSemantics};
use crate::error::{QmlError, Result};
use crate::qdt::QuantumDataType;
use crate::result_schema::ResultSchema;

/// A decoded measurement outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DecodedValue {
    /// Unsigned integer value (AS_INT).
    Int(u64),
    /// Per-carrier Boolean labels in classical-bit order (AS_BOOL).
    Bool(Vec<bool>),
    /// Phase value (AS_PHASE): the observed index and its phase fraction in
    /// turns (multiply by 2π for radians).
    Phase {
        /// Observed integer index k.
        index: u64,
        /// Phase fraction k·phase_scale, in turns.
        fraction: f64,
    },
    /// Per-carrier Ising spins, `+1`/`-1`, in classical-bit order (AS_SPIN).
    Spins(Vec<i8>),
    /// Raw, uninterpreted bitstring (AS_RAW).
    Raw(String),
}

impl DecodedValue {
    /// The integer value if this is an `Int`.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            DecodedValue::Int(k) => Some(*k),
            _ => None,
        }
    }

    /// The phase fraction if this is a `Phase`.
    pub fn as_phase_fraction(&self) -> Option<f64> {
        match self {
            DecodedValue::Phase { fraction, .. } => Some(*fraction),
            _ => None,
        }
    }

    /// The Boolean labels if this is a `Bool`.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            DecodedValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The spins if this is a `Spins`.
    pub fn as_spins(&self) -> Option<&[i8]> {
        match self {
            DecodedValue::Spins(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a measured word into per-classical-bit booleans.
fn parse_bits(word: &str) -> Result<Vec<bool>> {
    word.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(QmlError::Decode(format!(
                "measured word contains non-binary character `{other}`"
            ))),
        })
        .collect()
}

/// Integer value of the per-bit outcomes under the given significance order.
fn word_to_index(bits: &[bool], order: BitOrder) -> u64 {
    let width = bits.len();
    bits.iter().enumerate().fold(0u64, |acc, (i, &bit)| {
        if bit {
            acc | (1u64 << order.weight_exponent(i, width))
        } else {
            acc
        }
    })
}

/// Decode a single measured word according to a result schema and the data
/// type of the register it reads out.
pub fn decode_word(
    word: &str,
    schema: &ResultSchema,
    qdt: &QuantumDataType,
) -> Result<DecodedValue> {
    let bits = parse_bits(word)?;
    if bits.len() != schema.num_clbits() {
        return Err(QmlError::Decode(format!(
            "measured word has {} bits but the result schema declares {} classical bits",
            bits.len(),
            schema.num_clbits()
        )));
    }
    match schema.datatype {
        MeasurementSemantics::AsInt => Ok(DecodedValue::Int(word_to_index(
            &bits,
            schema.bit_significance,
        ))),
        MeasurementSemantics::AsBool => Ok(DecodedValue::Bool(bits)),
        MeasurementSemantics::AsSpin => Ok(DecodedValue::Spins(
            bits.iter().map(|&b| if b { -1 } else { 1 }).collect(),
        )),
        MeasurementSemantics::AsPhase => {
            let scale = qdt.phase_scale.ok_or_else(|| {
                QmlError::Decode(format!(
                    "register `{}` has AS_PHASE semantics but no phase_scale",
                    qdt.id
                ))
            })?;
            let index = word_to_index(&bits, schema.bit_significance);
            Ok(DecodedValue::Phase {
                index,
                fraction: scale.fraction(index),
            })
        }
        MeasurementSemantics::AsRaw => Ok(DecodedValue::Raw(word.to_string())),
    }
}

/// Decode an Ising-spin assignment from a Boolean word using the convention
/// stated in the paper's §5: Boolean readout `0 ↦ spin +1`, `1 ↦ spin −1`.
pub fn bools_to_spins(bits: &[bool]) -> Vec<i8> {
    bits.iter().map(|&b| if b { -1 } else { 1 }).collect()
}

/// Aggregated, decoded counts: every observed word with its multiplicity and
/// its decoded value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedCounts {
    /// Observed words and how often each occurred.
    pub counts: BTreeMap<String, u64>,
    /// Decoded value per observed word.
    pub decoded: BTreeMap<String, DecodedValue>,
    /// Total number of samples.
    pub total: u64,
}

impl DecodedCounts {
    /// Decode a whole counts map.
    pub fn decode(
        counts: &BTreeMap<String, u64>,
        schema: &ResultSchema,
        qdt: &QuantumDataType,
    ) -> Result<Self> {
        let mut decoded = BTreeMap::new();
        let mut total = 0u64;
        for (word, &n) in counts {
            decoded.insert(word.clone(), decode_word(word, schema, qdt)?);
            total += n;
        }
        Ok(DecodedCounts {
            counts: counts.clone(),
            decoded,
            total,
        })
    }

    /// The most frequently observed word (ties broken lexicographically).
    pub fn most_frequent(&self) -> Option<(&str, u64)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(w, &n)| (w.as_str(), n))
    }

    /// Empirical probability of a word.
    pub fn probability(&self, word: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(word).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Expected value of a user-supplied objective over the observed words,
    /// weighted by how often each word was observed — the statistic the paper
    /// calls the "expected cut".
    pub fn expectation<F: Fn(&str, &DecodedValue) -> f64>(&self, objective: F) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(word, &n)| objective(word, &self.decoded[word]) * n as f64)
            .sum::<f64>()
            / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_schema(width: usize, order: BitOrder) -> (ResultSchema, QuantumDataType) {
        let qdt = QuantumDataType::builder("r", width)
            .bit_order(order)
            .build()
            .unwrap();
        let mut schema = ResultSchema::for_register(&qdt);
        schema.bit_significance = order;
        (schema, qdt)
    }

    #[test]
    fn int_decode_lsb0() {
        let (schema, qdt) = int_schema(4, BitOrder::Lsb0);
        // clbit 0 = '1' → weight 2^0, clbit 3 = '1' → weight 2^3.
        let v = decode_word("1001", &schema, &qdt).unwrap();
        assert_eq!(v, DecodedValue::Int(0b1001));
    }

    #[test]
    fn int_decode_msb0() {
        let (schema, qdt) = int_schema(4, BitOrder::Msb0);
        // clbit 0 = '1' → weight 2^3.
        let v = decode_word("1000", &schema, &qdt).unwrap();
        assert_eq!(v, DecodedValue::Int(8));
    }

    #[test]
    fn phase_decode_uses_phase_scale() {
        let qdt = QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap();
        let schema = ResultSchema::for_register(&qdt);
        // Index 512 out of 1024 = half a turn.
        let word: String = (0..10).map(|i| if i == 9 { '1' } else { '0' }).collect();
        let v = decode_word(&word, &schema, &qdt).unwrap();
        match v {
            DecodedValue::Phase { index, fraction } => {
                assert_eq!(index, 512);
                assert!((fraction - 0.5).abs() < 1e-12);
            }
            other => panic!("expected phase, got {other:?}"),
        }
    }

    #[test]
    fn bool_and_spin_decode() {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let schema = ResultSchema::for_register(&qdt);
        let v = decode_word("1010", &schema, &qdt).unwrap();
        assert_eq!(
            v,
            DecodedValue::Bool(vec![true, false, true, false]),
            "ISING_SPIN registers read out AS_BOOL per the paper's PoC"
        );
        assert_eq!(
            bools_to_spins(&[true, false, true, false]),
            vec![-1, 1, -1, 1]
        );

        let mut spin_schema = schema.clone();
        spin_schema.datatype = MeasurementSemantics::AsSpin;
        let v = decode_word("1010", &spin_schema, &qdt).unwrap();
        assert_eq!(v, DecodedValue::Spins(vec![-1, 1, -1, 1]));
    }

    #[test]
    fn raw_decode_passthrough() {
        let qdt = QuantumDataType::builder("raw", 3)
            .encoding(crate::encoding::EncodingKind::AmplitudeRegister)
            .build()
            .unwrap();
        let schema = ResultSchema::for_register(&qdt);
        assert_eq!(
            decode_word("011", &schema, &qdt).unwrap(),
            DecodedValue::Raw("011".into())
        );
    }

    #[test]
    fn wrong_width_rejected() {
        let (schema, qdt) = int_schema(4, BitOrder::Lsb0);
        assert!(decode_word("101", &schema, &qdt).is_err());
        assert!(decode_word("10101", &schema, &qdt).is_err());
    }

    #[test]
    fn non_binary_rejected() {
        let (schema, qdt) = int_schema(4, BitOrder::Lsb0);
        assert!(decode_word("10x1", &schema, &qdt).is_err());
    }

    #[test]
    fn phase_without_scale_rejected() {
        let qdt = QuantumDataType::int_register("r", "r", 4).unwrap();
        let mut schema = ResultSchema::for_register(&qdt);
        schema.datatype = MeasurementSemantics::AsPhase;
        assert!(decode_word("0000", &schema, &qdt).is_err());
    }

    #[test]
    fn counts_statistics() {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let schema = ResultSchema::for_register(&qdt);
        let mut counts = BTreeMap::new();
        counts.insert("1010".to_string(), 600u64);
        counts.insert("0101".to_string(), 300u64);
        counts.insert("0000".to_string(), 100u64);
        let decoded = DecodedCounts::decode(&counts, &schema, &qdt).unwrap();
        assert_eq!(decoded.total, 1000);
        assert_eq!(decoded.most_frequent(), Some(("1010", 600)));
        assert!((decoded.probability("0101") - 0.3).abs() < 1e-12);
        assert_eq!(decoded.probability("1111"), 0.0);

        // Count the number of 1-labels as a toy objective.
        let avg_ones =
            decoded.expectation(|word, _| word.chars().filter(|&c| c == '1').count() as f64);
        assert!((avg_ones - (0.6 * 2.0 + 0.3 * 2.0 + 0.1 * 0.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_edge_cases() {
        let qdt = QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap();
        let schema = ResultSchema::for_register(&qdt);
        let decoded = DecodedCounts::decode(&BTreeMap::new(), &schema, &qdt).unwrap();
        assert_eq!(decoded.total, 0);
        assert_eq!(decoded.most_frequent(), None);
        assert_eq!(decoded.expectation(|_, _| 1.0), 0.0);
    }
}
