//! Service classes: the per-job latency-vs-throughput attribute.
//!
//! The serving tier's batching and ordering policies used to be one global
//! trade: micro-batching buys sweep throughput at the price of preemption
//! latency. A closed-loop variational driver — an optimizer submitting one
//! tiny job per iteration and blocking on its outcome — loses that trade
//! every time. [`ServiceClass`] makes the trade per job: `Latency` jobs are
//! ordered ahead of `Throughput` jobs inside their tenant (earliest
//! deadline first within the class), dispatch caps their micro-batches
//! independently of the throughput cap, and a latency arrival stops
//! *forming* batches from growing (never a running one).
//!
//! The class is policy, not intent: it is excluded from every program hash,
//! so a latency job and a throughput job with the same descriptors share
//! one transpiled plan.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The scheduling class of a job: latency-critical (optionally with a
/// deadline) or throughput-oriented (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServiceClass {
    /// Latency-critical: ordered ahead of `Throughput` work inside the
    /// tenant, earliest deadline first, and dispatched in micro-batches
    /// capped by the service's latency cap (default 2, not the adaptive
    /// throughput cap).
    Latency {
        /// Optional completion deadline, relative to submission. A job
        /// that settles after its deadline counts one `deadline_miss`;
        /// deadline-free latency jobs can never miss.
        deadline: Option<Duration>,
    },
    /// Throughput-oriented: cost-ranked (LPT) behind any latency work,
    /// coalesced up to the adaptive throughput batch cap. The default.
    #[default]
    Throughput,
}

impl ServiceClass {
    /// A deadline-free latency-class marker.
    pub fn latency() -> Self {
        ServiceClass::Latency { deadline: None }
    }

    /// A latency class with a completion deadline relative to submission.
    pub fn latency_within(deadline: Duration) -> Self {
        ServiceClass::Latency {
            deadline: Some(deadline),
        }
    }

    /// The class name used for metrics keys: `"latency"` or `"throughput"`.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceClass::Latency { .. } => "latency",
            ServiceClass::Throughput => "throughput",
        }
    }

    /// The relative deadline, if this is a deadline-carrying latency job.
    pub fn deadline(&self) -> Option<Duration> {
        match self {
            ServiceClass::Latency { deadline } => *deadline,
            ServiceClass::Throughput => None,
        }
    }

    /// Whether this is the latency class (with or without a deadline).
    pub fn is_latency(&self) -> bool {
        matches!(self, ServiceClass::Latency { .. })
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceClass::Throughput => f.write_str("throughput"),
            ServiceClass::Latency { deadline: None } => f.write_str("latency"),
            ServiceClass::Latency {
                deadline: Some(d), ..
            } => write!(f, "latency:{}us", d.as_micros()),
        }
    }
}

// Serialized as a compact string — "throughput", "latency", or
// "latency:<micros>us" — so the class reads naturally in job JSON and the
// vendored serde needs no `Duration` support.
impl Serialize for ServiceClass {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for ServiceClass {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        let raw = String::deserialize(deserializer)?;
        parse_class(&raw).ok_or_else(|| {
            serde::de::Error::custom(format!(
                "invalid service class {raw:?}: expected \"throughput\", \"latency\", \
                 or \"latency:<micros>us\""
            ))
        })
    }
}

fn parse_class(raw: &str) -> Option<ServiceClass> {
    match raw {
        "throughput" => Some(ServiceClass::Throughput),
        "latency" => Some(ServiceClass::latency()),
        _ => {
            let micros = raw.strip_prefix("latency:")?.strip_suffix("us")?;
            let micros: u64 = micros.parse().ok()?;
            Some(ServiceClass::latency_within(Duration::from_micros(micros)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_throughput() {
        assert_eq!(ServiceClass::default(), ServiceClass::Throughput);
        assert!(!ServiceClass::default().is_latency());
    }

    #[test]
    fn names_and_deadlines() {
        assert_eq!(ServiceClass::Throughput.name(), "throughput");
        assert_eq!(ServiceClass::latency().name(), "latency");
        assert_eq!(ServiceClass::latency().deadline(), None);
        assert_eq!(
            ServiceClass::latency_within(Duration::from_millis(5)).deadline(),
            Some(Duration::from_millis(5))
        );
        assert_eq!(ServiceClass::Throughput.deadline(), None);
    }

    #[test]
    fn serde_round_trips_every_variant() {
        for class in [
            ServiceClass::Throughput,
            ServiceClass::latency(),
            ServiceClass::latency_within(Duration::from_micros(1500)),
        ] {
            let json = serde_json::to_string(&class).unwrap();
            let back: ServiceClass = serde_json::from_str(&json).unwrap();
            assert_eq!(back, class, "round trip through {json}");
        }
    }

    #[test]
    fn compact_string_forms() {
        assert_eq!(
            serde_json::to_string(&ServiceClass::Throughput).unwrap(),
            "\"throughput\""
        );
        assert_eq!(
            serde_json::to_string(&ServiceClass::latency()).unwrap(),
            "\"latency\""
        );
        assert_eq!(
            serde_json::to_string(&ServiceClass::latency_within(Duration::from_micros(250)))
                .unwrap(),
            "\"latency:250us\""
        );
    }

    #[test]
    fn malformed_class_strings_are_rejected() {
        for raw in [
            "\"bulk\"",
            "\"latency:us\"",
            "\"latency:-4us\"",
            "\"latency:5ms\"",
        ] {
            assert!(
                serde_json::from_str::<ServiceClass>(raw).is_err(),
                "{raw} must not parse"
            );
        }
    }
}
