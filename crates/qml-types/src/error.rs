//! Error type shared by every descriptor constructor and validator in the
//! middle layer.
//!
//! The middle layer's contract is that malformed descriptors are rejected
//! *early* — at construction or at bundle validation — rather than surfacing
//! as backend failures. Every fallible operation in `qml-types` returns
//! [`QmlError`].

use std::fmt;

/// Errors produced by descriptor construction, validation, (de)serialization,
/// parameter binding, and result decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum QmlError {
    /// A descriptor violated a structural or semantic constraint.
    Validation(String),
    /// A descriptor referenced a quantum data type id that is not part of the
    /// bundle (or the referenced register has the wrong shape).
    UnknownRegister(String),
    /// Two descriptors disagree about the width of a register.
    WidthMismatch {
        /// Register id whose width is disputed.
        register: String,
        /// Width declared by the quantum data type.
        expected: usize,
        /// Width implied by the operator or result schema.
        found: usize,
    },
    /// A symbolic parameter was still unbound at realization time.
    UnboundParameter(String),
    /// JSON (de)serialization failed.
    Json(String),
    /// The requested operation is valid but not supported by this component
    /// (e.g. an engine string no registered backend understands).
    Unsupported(String),
    /// Decoding a measured word according to a result schema failed.
    Decode(String),
    /// A device-level failure: the executing device (not the job) is at
    /// fault — a crashed simulator process, a lost link, an injected fault.
    /// Fleet schedulers treat this variant — and only this variant — as
    /// evidence against the device's health; every other error is a job
    /// defect and must not poison the device that reported it.
    DeviceFault(String),
}

impl QmlError {
    /// True for [`QmlError::DeviceFault`]: the *device* failed, not the job,
    /// so the job is safe to retry elsewhere and the device's health should
    /// be charged.
    pub fn is_device_fault(&self) -> bool {
        matches!(self, QmlError::DeviceFault(_))
    }
}

impl fmt::Display for QmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QmlError::Validation(msg) => write!(f, "validation error: {msg}"),
            QmlError::UnknownRegister(id) => write!(f, "unknown register `{id}`"),
            QmlError::WidthMismatch {
                register,
                expected,
                found,
            } => write!(
                f,
                "width mismatch for register `{register}`: declared {expected}, used as {found}"
            ),
            QmlError::UnboundParameter(name) => {
                write!(f, "parameter `{name}` is still unbound at realization time")
            }
            QmlError::Json(msg) => write!(f, "json error: {msg}"),
            QmlError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            QmlError::Decode(msg) => write!(f, "decode error: {msg}"),
            QmlError::DeviceFault(msg) => write!(f, "device fault: {msg}"),
        }
    }
}

impl std::error::Error for QmlError {}

impl From<serde_json::Error> for QmlError {
    fn from(err: serde_json::Error) -> Self {
        QmlError::Json(err.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, QmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_validation() {
        let e = QmlError::Validation("width must be > 0".into());
        assert_eq!(e.to_string(), "validation error: width must be > 0");
    }

    #[test]
    fn display_width_mismatch() {
        let e = QmlError::WidthMismatch {
            register: "reg_phase".into(),
            expected: 10,
            found: 4,
        };
        assert!(e.to_string().contains("reg_phase"));
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn from_serde_json() {
        let bad: std::result::Result<serde_json::Value, _> = serde_json::from_str("{not json");
        let err: QmlError = bad.unwrap_err().into();
        assert!(matches!(err, QmlError::Json(_)));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(QmlError::Unsupported("pulse engine".into()));
    }
}
