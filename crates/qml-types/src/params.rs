//! Operator parameters with support for **late binding**.
//!
//! The paper requires that the middle layer "allow late parameter binding"
//! (§3): an operator descriptor may carry symbolic parameters (for instance
//! the QAOA angles γ, β) which are bound only when the bundle is submitted to
//! a backend. [`ParamValue::Symbol`] represents such an unbound parameter;
//! [`Params::bind`] substitutes concrete values.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::error::{QmlError, Result};

/// Reference to a named, not-yet-bound parameter.
///
/// Serialized as `{"$param": "gamma_0"}` so it cannot be confused with an
/// ordinary nested map in the untagged [`ParamValue`] representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SymbolRef {
    /// Name of the symbolic parameter.
    #[serde(rename = "$param")]
    pub name: String,
}

/// A JSON-compatible parameter value carried by an operator or context
/// descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Boolean flag (e.g. `do_swaps`).
    Bool(bool),
    /// Signed integer (e.g. `approx_degree`).
    Int(i64),
    /// Floating-point value (e.g. a rotation angle).
    Float(f64),
    /// A symbolic, late-bound parameter (`{"$param": "gamma_0"}`).
    Symbol(SymbolRef),
    /// Text value (e.g. an engine name inside an extension block).
    Str(String),
    /// Ordered list of values (e.g. an edge list).
    List(Vec<ParamValue>),
    /// Nested map of values.
    Map(BTreeMap<String, ParamValue>),
}

impl ParamValue {
    /// Construct a symbolic (unbound) parameter.
    pub fn symbol(name: impl Into<String>) -> Self {
        ParamValue::Symbol(SymbolRef { name: name.into() })
    }

    /// True if this value is — or contains — an unbound symbol.
    pub fn has_symbol(&self) -> bool {
        match self {
            ParamValue::Symbol(_) => true,
            ParamValue::List(items) => items.iter().any(ParamValue::has_symbol),
            ParamValue::Map(map) => map.values().any(ParamValue::has_symbol),
            _ => false,
        }
    }

    /// Names of all unbound symbols contained in this value.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<String>) {
        match self {
            ParamValue::Symbol(s) => out.push(s.name.clone()),
            ParamValue::List(items) => items.iter().for_each(|v| v.collect_symbols(out)),
            ParamValue::Map(map) => map.values().for_each(|v| v.collect_symbols(out)),
            _ => {}
        }
    }

    /// Replace every symbol found in `bindings` with its concrete value.
    /// Symbols without a binding are left in place.
    pub fn bind(&self, bindings: &BTreeMap<String, ParamValue>) -> ParamValue {
        match self {
            ParamValue::Symbol(s) => bindings
                .get(&s.name)
                .cloned()
                .unwrap_or_else(|| self.clone()),
            ParamValue::List(items) => {
                ParamValue::List(items.iter().map(|v| v.bind(bindings)).collect())
            }
            ParamValue::Map(map) => ParamValue::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.bind(bindings)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Interpret the value as an `f64` (integers widen, booleans map to 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(x) => Some(*x),
            ParamValue::Int(x) => Some(*x as f64),
            ParamValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interpret the value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(x) => Some(*x),
            ParamValue::Float(x) if x.fract() == 0.0 => Some(*x as i64),
            ParamValue::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret the value as a `u64` (rejects negatives).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|x| u64::try_from(x).ok())
    }

    /// Interpret the value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret the value as a list.
    pub fn as_list(&self) -> Option<&[ParamValue]> {
        match self {
            ParamValue::List(items) => Some(items),
            _ => None,
        }
    }

    /// Interpret the value as a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, ParamValue>> {
        match self {
            ParamValue::Map(map) => Some(map),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match serde_json::to_string(self) {
            Ok(s) => f.write_str(&s),
            Err(_) => f.write_str("<param>"),
        }
    }
}

impl From<bool> for ParamValue {
    fn from(b: bool) -> Self {
        ParamValue::Bool(b)
    }
}
impl From<i64> for ParamValue {
    fn from(x: i64) -> Self {
        ParamValue::Int(x)
    }
}
impl From<i32> for ParamValue {
    fn from(x: i32) -> Self {
        ParamValue::Int(x as i64)
    }
}
impl From<usize> for ParamValue {
    fn from(x: usize) -> Self {
        ParamValue::Int(x as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(x: f64) -> Self {
        ParamValue::Float(x)
    }
}
impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}
impl<T: Into<ParamValue>> From<Vec<T>> for ParamValue {
    fn from(items: Vec<T>) -> Self {
        ParamValue::List(items.into_iter().map(Into::into).collect())
    }
}

/// Named parameter set attached to an operator descriptor (the `params`
/// block of the paper's Listing 3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Params {
    /// Underlying ordered map (ordered so JSON artifacts are reproducible).
    pub entries: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Empty parameter set.
    pub fn new() -> Self {
        Params::default()
    }

    /// Insert (or replace) a parameter, builder-style.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.entries.insert(key.into(), value.into());
        self
    }

    /// Insert (or replace) a parameter in place.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<ParamValue>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Look up a parameter by name.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.entries.get(key)
    }

    /// Required `f64` parameter, with a descriptive error.
    pub fn require_f64(&self, key: &str) -> Result<f64> {
        match self.get(key) {
            Some(ParamValue::Symbol(s)) => Err(QmlError::UnboundParameter(s.name.clone())),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| QmlError::Validation(format!("parameter `{key}` is not numeric"))),
            None => Err(QmlError::Validation(format!("missing parameter `{key}`"))),
        }
    }

    /// Required `u64` parameter.
    pub fn require_u64(&self, key: &str) -> Result<u64> {
        match self.get(key) {
            Some(ParamValue::Symbol(s)) => Err(QmlError::UnboundParameter(s.name.clone())),
            Some(v) => v.as_u64().ok_or_else(|| {
                QmlError::Validation(format!("parameter `{key}` is not an unsigned integer"))
            }),
            None => Err(QmlError::Validation(format!("missing parameter `{key}`"))),
        }
    }

    /// Optional `bool` parameter with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        self.get(key)
            .and_then(ParamValue::as_bool)
            .unwrap_or(default)
    }

    /// Optional `u64` parameter with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(ParamValue::as_u64)
            .unwrap_or(default)
    }

    /// Optional `f64` parameter with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(ParamValue::as_f64)
            .unwrap_or(default)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Names of every unbound symbol across all entries.
    pub fn unbound_symbols(&self) -> Vec<String> {
        let mut out: Vec<String> = self.entries.values().flat_map(|v| v.symbols()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Return a copy with every symbol found in `bindings` substituted.
    pub fn bind(&self, bindings: &BTreeMap<String, ParamValue>) -> Params {
        Params {
            entries: self
                .entries
                .iter()
                .map(|(k, v)| (k.clone(), v.bind(bindings)))
                .collect(),
        }
    }

    /// Error if any entry still contains an unbound symbol.
    pub fn ensure_bound(&self) -> Result<()> {
        let symbols = self.unbound_symbols();
        if let Some(first) = symbols.first() {
            Err(QmlError::UnboundParameter(first.clone()))
        } else {
            Ok(())
        }
    }
}

impl FromIterator<(String, ParamValue)> for Params {
    fn from_iter<I: IntoIterator<Item = (String, ParamValue)>>(iter: I) -> Self {
        Params {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untagged_round_trip_scalars() {
        for (json, expected) in [
            ("true", ParamValue::Bool(true)),
            ("3", ParamValue::Int(3)),
            ("0.5", ParamValue::Float(0.5)),
            ("\"hello\"", ParamValue::Str("hello".into())),
        ] {
            let v: ParamValue = serde_json::from_str(json).unwrap();
            assert_eq!(v, expected, "parsing {json}");
        }
    }

    #[test]
    fn symbol_round_trip() {
        let v = ParamValue::symbol("gamma_0");
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, r#"{"$param":"gamma_0"}"#);
        let back: ParamValue = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(back.has_symbol());
    }

    #[test]
    fn plain_map_is_not_a_symbol() {
        let json = r#"{"edges": [[0,1],[1,2]], "weight": 1.0}"#;
        let v: ParamValue = serde_json::from_str(json).unwrap();
        assert!(matches!(v, ParamValue::Map(_)));
        assert!(!v.has_symbol());
    }

    #[test]
    fn nested_symbol_detection_and_binding() {
        let v = ParamValue::List(vec![
            ParamValue::Int(1),
            ParamValue::symbol("beta_0"),
            ParamValue::Map(
                [("angle".to_string(), ParamValue::symbol("gamma_0"))]
                    .into_iter()
                    .collect(),
            ),
        ]);
        assert_eq!(
            v.symbols(),
            vec!["beta_0".to_string(), "gamma_0".to_string()]
        );

        let mut bindings = BTreeMap::new();
        bindings.insert("beta_0".to_string(), ParamValue::Float(0.3));
        bindings.insert("gamma_0".to_string(), ParamValue::Float(0.7));
        let bound = v.bind(&bindings);
        assert!(!bound.has_symbol());
    }

    #[test]
    fn partial_binding_leaves_unknown_symbols() {
        let v = ParamValue::symbol("delta");
        let bound = v.bind(&BTreeMap::new());
        assert!(bound.has_symbol());
    }

    #[test]
    fn params_builder_and_lookup() {
        let p = Params::new()
            .with("approx_degree", 0)
            .with("do_swaps", true)
            .with("inverse", false);
        assert_eq!(p.len(), 3);
        assert_eq!(p.require_u64("approx_degree").unwrap(), 0);
        assert!(p.bool_or("do_swaps", false));
        assert!(!p.bool_or("inverse", true));
        assert!(p.require_f64("missing").is_err());
    }

    #[test]
    fn params_unbound_symbol_is_an_error() {
        let p = Params::new().with("gamma", ParamValue::symbol("gamma_0"));
        assert_eq!(p.unbound_symbols(), vec!["gamma_0".to_string()]);
        assert!(matches!(
            p.require_f64("gamma"),
            Err(QmlError::UnboundParameter(_))
        ));
        assert!(p.ensure_bound().is_err());

        let mut bindings = BTreeMap::new();
        bindings.insert("gamma_0".to_string(), ParamValue::Float(1.2));
        let bound = p.bind(&bindings);
        assert!(bound.ensure_bound().is_ok());
        assert!((bound.require_f64("gamma").unwrap() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(ParamValue::Int(4).as_f64(), Some(4.0));
        assert_eq!(ParamValue::Float(4.0).as_i64(), Some(4));
        assert_eq!(ParamValue::Float(4.5).as_i64(), None);
        assert_eq!(ParamValue::Int(-1).as_u64(), None);
        assert_eq!(ParamValue::Bool(true).as_f64(), Some(1.0));
    }

    #[test]
    fn params_transparent_serialization() {
        let p = Params::new().with("samples", 4096).with("seed", 42);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"{"samples":4096,"seed":42}"#);
        let back: Params = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
