//! Result schemas: how a readout is produced and decoded (paper §4.2).
//!
//! The paper's Listing 3 attaches a `result_schema` block to the QFT operator
//! so that "a downstream readout" is decoded without guessing: measurement
//! basis, datatype interpretation, bit significance and the order in which
//! logical wires map to classical bits are all explicit.

use serde::{Deserialize, Serialize};

use crate::encoding::{BitOrder, MeasurementSemantics};
use crate::error::{QmlError, Result};
use crate::qdt::QuantumDataType;

/// Measurement basis for a readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MeasurementBasis {
    /// Computational (Z) basis — the only basis used by the paper's PoC.
    #[default]
    #[serde(rename = "Z")]
    Z,
    /// Hadamard (X) basis.
    #[serde(rename = "X")]
    X,
    /// Y basis.
    #[serde(rename = "Y")]
    Y,
}

impl MeasurementBasis {
    /// Canonical single-letter name.
    pub fn as_str(self) -> &'static str {
        match self {
            MeasurementBasis::Z => "Z",
            MeasurementBasis::X => "X",
            MeasurementBasis::Y => "Y",
        }
    }
}

/// Explicit decoding rules for the classical outcome of a measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSchema {
    /// Basis in which the register is measured.
    #[serde(default)]
    pub basis: MeasurementBasis,
    /// Interpretation of the measured word (`AS_PHASE`, `AS_BOOL`, ...).
    pub datatype: MeasurementSemantics,
    /// Significance of successive classical bits.
    #[serde(default)]
    pub bit_significance: BitOrder,
    /// Logical wire labels (e.g. `reg_phase[3]`) in the order their outcomes
    /// are mapped to successive classical bits.
    pub clbit_order: Vec<String>,
}

impl ResultSchema {
    /// Build the schema the paper's listings use: Z-basis measurement of the
    /// whole register in ascending wire order, decoded with the register's own
    /// semantics and bit order.
    pub fn for_register(qdt: &QuantumDataType) -> Self {
        ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: qdt.measurement_semantics,
            bit_significance: qdt.bit_order,
            clbit_order: qdt.wire_labels(),
        }
    }

    /// Number of classical bits produced by this readout.
    pub fn num_clbits(&self) -> usize {
        self.clbit_order.len()
    }

    /// Validate the schema against the register it reads out: every wire label
    /// must belong to the register, appear at most once, and the width must
    /// not exceed the register width.
    pub fn validate_against(&self, qdt: &QuantumDataType) -> Result<()> {
        if self.clbit_order.is_empty() {
            return Err(QmlError::Validation(
                "result schema must list at least one classical bit".into(),
            ));
        }
        if self.clbit_order.len() > qdt.width {
            return Err(QmlError::WidthMismatch {
                register: qdt.id.clone(),
                expected: qdt.width,
                found: self.clbit_order.len(),
            });
        }
        let valid = qdt.wire_labels();
        let mut seen = std::collections::BTreeSet::new();
        for label in &self.clbit_order {
            if !valid.contains(label) {
                return Err(QmlError::Validation(format!(
                    "result schema references `{label}` which is not a wire of register `{}`",
                    qdt.id
                )));
            }
            if !seen.insert(label.clone()) {
                return Err(QmlError::Validation(format!(
                    "result schema lists wire `{label}` more than once"
                )));
            }
        }
        Ok(())
    }

    /// Indices (into the register) of the wires read out, in classical-bit
    /// order. E.g. `["reg[2]", "reg[0]"]` yields `[2, 0]`.
    pub fn wire_indices(&self, qdt: &QuantumDataType) -> Result<Vec<usize>> {
        self.clbit_order
            .iter()
            .map(|label| {
                let open = label.find('[').ok_or_else(|| {
                    QmlError::Validation(format!("malformed wire label `{label}`"))
                })?;
                let close = label.find(']').ok_or_else(|| {
                    QmlError::Validation(format!("malformed wire label `{label}`"))
                })?;
                if label[..open] != qdt.id {
                    return Err(QmlError::Validation(format!(
                        "wire label `{label}` does not belong to register `{}`",
                        qdt.id
                    )));
                }
                label[open + 1..close]
                    .parse::<usize>()
                    .map_err(|_| QmlError::Validation(format!("malformed wire label `{label}`")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::qdt::QdtBuilder;

    fn phase_reg() -> QuantumDataType {
        QuantumDataType::phase_register("reg_phase", "phase", 10).unwrap()
    }

    #[test]
    fn listing3_result_schema_parses() {
        let json = r#"
        {
            "basis": "Z",
            "datatype": "AS_PHASE",
            "bit_significance": "LSB_0",
            "clbit_order": [
                "reg_phase[0]", "reg_phase[1]", "reg_phase[2]",
                "reg_phase[3]", "reg_phase[4]", "reg_phase[5]",
                "reg_phase[6]", "reg_phase[7]", "reg_phase[8]",
                "reg_phase[9]"
            ]
        }"#;
        let schema: ResultSchema = serde_json::from_str(json).unwrap();
        assert_eq!(schema.basis, MeasurementBasis::Z);
        assert_eq!(schema.datatype, MeasurementSemantics::AsPhase);
        assert_eq!(schema.num_clbits(), 10);
        schema.validate_against(&phase_reg()).unwrap();
    }

    #[test]
    fn for_register_matches_manual_schema() {
        let qdt = phase_reg();
        let schema = ResultSchema::for_register(&qdt);
        assert_eq!(schema.clbit_order.len(), 10);
        assert_eq!(schema.clbit_order[3], "reg_phase[3]");
        schema.validate_against(&qdt).unwrap();
    }

    #[test]
    fn wrong_register_wire_rejected() {
        let qdt = phase_reg();
        let mut schema = ResultSchema::for_register(&qdt);
        schema.clbit_order[0] = "other_reg[0]".into();
        assert!(schema.validate_against(&qdt).is_err());
    }

    #[test]
    fn duplicate_wire_rejected() {
        let qdt = phase_reg();
        let mut schema = ResultSchema::for_register(&qdt);
        schema.clbit_order[1] = "reg_phase[0]".into();
        assert!(schema.validate_against(&qdt).is_err());
    }

    #[test]
    fn too_wide_schema_rejected() {
        let qdt = QuantumDataType::bool_register("b", "b", 2).unwrap();
        let schema = ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: MeasurementSemantics::AsBool,
            bit_significance: BitOrder::Lsb0,
            clbit_order: vec!["b[0]".into(), "b[1]".into(), "b[2]".into()],
        };
        assert!(matches!(
            schema.validate_against(&qdt),
            Err(QmlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn empty_schema_rejected() {
        let qdt = phase_reg();
        let schema = ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: MeasurementSemantics::AsPhase,
            bit_significance: BitOrder::Lsb0,
            clbit_order: vec![],
        };
        assert!(schema.validate_against(&qdt).is_err());
    }

    #[test]
    fn wire_indices_follow_clbit_order() {
        let qdt = QuantumDataType::int_register("r", "r", 4).unwrap();
        let schema = ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: MeasurementSemantics::AsInt,
            bit_significance: BitOrder::Lsb0,
            clbit_order: vec!["r[2]".into(), "r[0]".into(), "r[3]".into()],
        };
        assert_eq!(schema.wire_indices(&qdt).unwrap(), vec![2, 0, 3]);
    }

    #[test]
    fn malformed_wire_label_rejected() {
        let qdt = QuantumDataType::int_register("r", "r", 4).unwrap();
        let schema = ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: MeasurementSemantics::AsInt,
            bit_significance: BitOrder::Lsb0,
            clbit_order: vec!["r-two".into()],
        };
        assert!(schema.wire_indices(&qdt).is_err());
    }

    #[test]
    fn partial_readout_is_allowed() {
        // Reading only a sub-register is legal (e.g. a QPE output register).
        let qdt = QdtBuilder::new("work", 6)
            .encoding(EncodingKind::IntRegister)
            .build()
            .unwrap();
        let schema = ResultSchema {
            basis: MeasurementBasis::Z,
            datatype: MeasurementSemantics::AsInt,
            bit_significance: BitOrder::Lsb0,
            clbit_order: vec!["work[0]".into(), "work[1]".into(), "work[2]".into()],
        };
        schema.validate_against(&qdt).unwrap();
    }

    #[test]
    fn basis_letters_round_trip() {
        for (basis, s) in [
            (MeasurementBasis::Z, "\"Z\""),
            (MeasurementBasis::X, "\"X\""),
            (MeasurementBasis::Y, "\"Y\""),
        ] {
            assert_eq!(serde_json::to_string(&basis).unwrap(), s);
        }
    }
}
