//! Context descriptors: execution policy, orthogonal to program semantics
//! (paper §4.3, Listings 4 and 5).
//!
//! A [`ContextDescriptor`] says **how** an operator may be executed — which
//! engine, how many samples, with which target constraints, under which error
//! correction policy, with which annealer settings — without changing what the
//! operator means. Swapping the context re-targets a program; the intent
//! artifacts (data types and operators) stay untouched.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::error::{QmlError, Result};
use crate::params::ParamValue;

/// Name of the JSON Schema governing context descriptor artifacts.
pub const CTX_SCHEMA: &str = "ctx.schema.json";

/// Compilation target constraints (the `target` block of Listing 4).
///
/// Omitting the target yields "an ideal all-to-all configuration where all the
/// qubits are connected" (paper §4.3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Target {
    /// Native gate set the transpiler must decompose into (e.g. `["sx","rz","cx"]`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub basis_gates: Vec<String>,
    /// Undirected qubit connectivity as an edge list; `None` means all-to-all.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub coupling_map: Option<Vec<(usize, usize)>>,
    /// Number of physical carriers available on the target (optional).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub num_qubits: Option<usize>,
}

impl Target {
    /// A linear chain 0-1-2-...-(n-1), the topology of the paper's Listing 4.
    pub fn linear(n: usize) -> Self {
        Target {
            basis_gates: vec!["sx".into(), "rz".into(), "cx".into()],
            coupling_map: Some((0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect()),
            num_qubits: Some(n),
        }
    }

    /// A ring 0-1-...-(n-1)-0, the topology of the paper's Max-Cut context.
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        if n > 2 {
            edges.push((n - 1, 0));
        }
        Target {
            basis_gates: vec!["sx".into(), "rz".into(), "cx".into()],
            coupling_map: Some(edges),
            num_qubits: Some(n),
        }
    }

    /// An ideal all-to-all target with no basis restriction.
    pub fn all_to_all() -> Self {
        Target::default()
    }

    /// True if no connectivity restriction applies.
    pub fn is_all_to_all(&self) -> bool {
        self.coupling_map.is_none()
    }

    /// Largest qubit index mentioned by the coupling map plus one, or
    /// `num_qubits` if declared.
    pub fn effective_width(&self) -> Option<usize> {
        if let Some(n) = self.num_qubits {
            return Some(n);
        }
        self.coupling_map
            .as_ref()
            .and_then(|edges| edges.iter().map(|&(a, b)| a.max(b) + 1).max())
    }

    /// Validate internal consistency (coupling map indices within
    /// `num_qubits`, no self-loops).
    pub fn validate(&self) -> Result<()> {
        if let Some(edges) = &self.coupling_map {
            for &(a, b) in edges {
                if a == b {
                    return Err(QmlError::Validation(format!(
                        "coupling map contains self-loop ({a},{b})"
                    )));
                }
                if let Some(n) = self.num_qubits {
                    if a >= n || b >= n {
                        return Err(QmlError::Validation(format!(
                            "coupling map edge ({a},{b}) exceeds declared num_qubits {n}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Free-form transpiler/engine options (the `options` block of Listing 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Transpiler optimization level, 0–3 (Qiskit-compatible scale).
    #[serde(default = "default_optimization_level")]
    pub optimization_level: u8,
    /// Any further engine-specific options, preserved verbatim.
    #[serde(flatten)]
    pub extra: BTreeMap<String, ParamValue>,
}

fn default_optimization_level() -> u8 {
    1
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            optimization_level: default_optimization_level(),
            extra: BTreeMap::new(),
        }
    }
}

/// Execution policy for a gate/simulator engine (the `exec` block of
/// Listing 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Engine identifier, e.g. `"gate.aer_simulator"` or `"anneal.neal_simulator"`.
    pub engine: String,
    /// Number of samples (shots / reads) to draw.
    #[serde(default = "default_samples")]
    pub samples: u64,
    /// Seed for reproducible sampling.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Compilation target constraints.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub target: Option<Target>,
    /// Engine/transpiler options.
    #[serde(default, skip_serializing_if = "is_default_options")]
    pub options: ExecOptions,
}

fn default_samples() -> u64 {
    1024
}

fn is_default_options(opts: &ExecOptions) -> bool {
    *opts == ExecOptions::default()
}

impl ExecConfig {
    /// New execution config for the given engine with default settings.
    pub fn new(engine: impl Into<String>) -> Self {
        ExecConfig {
            engine: engine.into(),
            samples: default_samples(),
            seed: None,
            target: None,
            options: ExecOptions::default(),
        }
    }

    /// Builder-style shot/read count.
    pub fn with_samples(mut self, samples: u64) -> Self {
        self.samples = samples;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builder-style target constraints.
    pub fn with_target(mut self, target: Target) -> Self {
        self.target = Some(target);
        self
    }

    /// Builder-style optimization level.
    pub fn with_optimization_level(mut self, level: u8) -> Self {
        self.options.optimization_level = level;
        self
    }

    /// The engine family — the part of the engine id before the first `.`
    /// (e.g. `"gate"`, `"anneal"`, `"pulse"`, `"cv"`).
    pub fn engine_family(&self) -> &str {
        self.engine.split('.').next().unwrap_or(&self.engine)
    }

    /// Validate the execution policy.
    pub fn validate(&self) -> Result<()> {
        if self.engine.trim().is_empty() {
            return Err(QmlError::Validation("exec.engine must be non-empty".into()));
        }
        if self.samples == 0 {
            return Err(QmlError::Validation("exec.samples must be positive".into()));
        }
        if self.options.optimization_level > 3 {
            return Err(QmlError::Validation(format!(
                "optimization_level {} out of range 0..=3",
                self.options.optimization_level
            )));
        }
        if let Some(target) = &self.target {
            target.validate()?;
        }
        Ok(())
    }
}

/// Error-correction policy carried by the context (Listing 5).
///
/// The QEC block is *policy*, not semantics: the same logical program runs
/// unmodified with or without it; an orthogonal QEC service consumes it at
/// realization time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QecConfig {
    /// Code family, e.g. `"surface"`, `"repetition"`, `"color"`.
    pub code_family: String,
    /// Code distance.
    pub distance: usize,
    /// Patch placement / ancilla management policy (`"auto"` delegates to the
    /// runtime).
    #[serde(default = "default_allocator")]
    pub allocator: String,
    /// Fault-tolerant primitives synthesis is constrained to.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub logical_gate_set: Vec<String>,
    /// Decoder choice (e.g. `"mwpm"`, `"union_find"`, `"majority"`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub decoder: Option<String>,
    /// Physical error rate assumed by resource estimation.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub physical_error_rate: Option<f64>,
}

fn default_allocator() -> String {
    "auto".to_string()
}

impl QecConfig {
    /// The paper's Listing 5 policy: a distance-7 surface code with automatic
    /// allocation and the Clifford+T logical gate set.
    pub fn surface(distance: usize) -> Self {
        QecConfig {
            code_family: "surface".into(),
            distance,
            allocator: default_allocator(),
            logical_gate_set: vec![
                "H".into(),
                "S".into(),
                "CNOT".into(),
                "T".into(),
                "MEASURE_Z".into(),
            ],
            decoder: None,
            physical_error_rate: None,
        }
    }

    /// Validate the policy (odd positive distance, known allocator).
    pub fn validate(&self) -> Result<()> {
        if self.code_family.trim().is_empty() {
            return Err(QmlError::Validation(
                "qec.code_family must be non-empty".into(),
            ));
        }
        if self.distance == 0 {
            return Err(QmlError::Validation("qec.distance must be positive".into()));
        }
        if self.distance.is_multiple_of(2) {
            return Err(QmlError::Validation(format!(
                "qec.distance {} must be odd so majority decoding is well defined",
                self.distance
            )));
        }
        if let Some(p) = self.physical_error_rate {
            if !(0.0..=1.0).contains(&p) {
                return Err(QmlError::Validation(format!(
                    "qec.physical_error_rate {p} must lie in [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Annealer execution policy (the `anneal` block of the paper's Fig. 3
/// context: `{"num_reads": 1000}` plus optional schedule controls).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Number of independent anneals (samples) to draw.
    #[serde(default = "default_num_reads")]
    pub num_reads: u64,
    /// Metropolis sweeps per read.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub num_sweeps: Option<u64>,
    /// Inverse-temperature range `(beta_min, beta_max)` of the schedule.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub beta_range: Option<(f64, f64)>,
    /// Seed for reproducible sampling.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
}

fn default_num_reads() -> u64 {
    1000
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            num_reads: default_num_reads(),
            num_sweeps: None,
            beta_range: None,
            seed: None,
        }
    }
}

impl AnnealConfig {
    /// Config with the given number of reads and defaults otherwise.
    pub fn with_reads(num_reads: u64) -> Self {
        AnnealConfig {
            num_reads,
            ..AnnealConfig::default()
        }
    }

    /// Validate the policy.
    pub fn validate(&self) -> Result<()> {
        if self.num_reads == 0 {
            return Err(QmlError::Validation(
                "anneal.num_reads must be positive".into(),
            ));
        }
        if let Some((lo, hi)) = self.beta_range {
            if !(lo > 0.0 && hi > lo) {
                return Err(QmlError::Validation(format!(
                    "anneal.beta_range ({lo}, {hi}) must satisfy 0 < beta_min < beta_max"
                )));
            }
        }
        if let Some(0) = self.num_sweeps {
            return Err(QmlError::Validation(
                "anneal.num_sweeps must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The complete execution context attached to a job bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextDescriptor {
    /// JSON Schema identifier used to validate this artifact.
    #[serde(rename = "$schema", default = "default_ctx_schema")]
    pub schema: String,
    /// Gate/simulator execution policy.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub exec: Option<ExecConfig>,
    /// Error-correction policy (orthogonal to the program).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub qec: Option<QecConfig>,
    /// Annealer execution policy.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub anneal: Option<AnnealConfig>,
    /// Forward-compatible extension blocks, preserved verbatim.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub extensions: BTreeMap<String, ParamValue>,
}

fn default_ctx_schema() -> String {
    CTX_SCHEMA.to_string()
}

impl Default for ContextDescriptor {
    fn default() -> Self {
        ContextDescriptor {
            schema: CTX_SCHEMA.to_string(),
            exec: None,
            qec: None,
            anneal: None,
            extensions: BTreeMap::new(),
        }
    }
}

impl ContextDescriptor {
    /// Context selecting a gate engine with the given policy.
    pub fn for_gate(exec: ExecConfig) -> Self {
        ContextDescriptor {
            exec: Some(exec),
            ..ContextDescriptor::default()
        }
    }

    /// Context selecting an annealing engine.
    pub fn for_anneal(engine: impl Into<String>, anneal: AnnealConfig) -> Self {
        ContextDescriptor {
            exec: Some(ExecConfig::new(engine)),
            anneal: Some(anneal),
            ..ContextDescriptor::default()
        }
    }

    /// Attach a QEC policy, builder-style.
    pub fn with_qec(mut self, qec: QecConfig) -> Self {
        self.qec = Some(qec);
        self
    }

    /// Attach an extension block, builder-style.
    pub fn with_extension(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.extensions.insert(key.into(), value.into());
        self
    }

    /// The engine id requested by this context, if any.
    pub fn engine(&self) -> Option<&str> {
        self.exec.as_ref().map(|e| e.engine.as_str())
    }

    /// Validate every block present.
    pub fn validate(&self) -> Result<()> {
        if self.schema != CTX_SCHEMA {
            return Err(QmlError::Validation(format!(
                "context references unknown schema `{}` (expected `{CTX_SCHEMA}`)",
                self.schema
            )));
        }
        if let Some(exec) = &self.exec {
            exec.validate()?;
        }
        if let Some(qec) = &self.qec {
            qec.validate()?;
        }
        if let Some(anneal) = &self.anneal {
            anneal.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact artifact from the paper's Listing 4.
    const LISTING_4: &str = r#"
    {
        "$schema": "ctx.schema.json",
        "exec": {
            "engine": "gate.aer_simulator",
            "samples": 4096,
            "seed": 42,
            "target": {
                "basis_gates": ["sx", "rz", "cx"],
                "coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]
            },
            "options": { "optimization_level": 2 }
        }
    }"#;

    #[test]
    fn listing4_parses_and_validates() {
        let ctx: ContextDescriptor = serde_json::from_str(LISTING_4).unwrap();
        ctx.validate().unwrap();
        let exec = ctx.exec.as_ref().unwrap();
        assert_eq!(exec.engine, "gate.aer_simulator");
        assert_eq!(exec.engine_family(), "gate");
        assert_eq!(exec.samples, 4096);
        assert_eq!(exec.seed, Some(42));
        assert_eq!(exec.options.optimization_level, 2);
        let target = exec.target.as_ref().unwrap();
        assert_eq!(target.basis_gates, vec!["sx", "rz", "cx"]);
        assert_eq!(target.coupling_map.as_ref().unwrap().len(), 9);
        assert_eq!(target.effective_width(), Some(10));
    }

    #[test]
    fn listing4_matches_linear_target_constructor() {
        let ctx: ContextDescriptor = serde_json::from_str(LISTING_4).unwrap();
        let target = ctx.exec.unwrap().target.unwrap();
        let expected = Target::linear(10);
        assert_eq!(target.coupling_map, expected.coupling_map);
        assert_eq!(target.basis_gates, expected.basis_gates);
    }

    #[test]
    fn listing5_qec_block_parses() {
        let json = r#"
        {
            "$schema": "ctx.schema.json",
            "exec": { "engine": "gate.aer_simulator" },
            "qec": {
                "code_family": "surface",
                "distance": 7,
                "allocator": "auto",
                "logical_gate_set": ["H", "S", "CNOT", "T", "MEASURE_Z"]
            },
            "extensions": {}
        }"#;
        let ctx: ContextDescriptor = serde_json::from_str(json).unwrap();
        ctx.validate().unwrap();
        let qec = ctx.qec.as_ref().unwrap();
        assert_eq!(qec.code_family, "surface");
        assert_eq!(qec.distance, 7);
        assert_eq!(qec.allocator, "auto");
        assert_eq!(qec.logical_gate_set.len(), 5);
        assert_eq!(*qec, QecConfig::surface(7));
    }

    #[test]
    fn anneal_context_defaults() {
        let json = r#"{ "$schema": "ctx.schema.json", "exec": {"engine": "anneal.neal_simulator"}, "anneal": {"num_reads": 1000} }"#;
        let ctx: ContextDescriptor = serde_json::from_str(json).unwrap();
        ctx.validate().unwrap();
        assert_eq!(ctx.anneal.as_ref().unwrap().num_reads, 1000);
        assert_eq!(ctx.exec.as_ref().unwrap().engine_family(), "anneal");
    }

    #[test]
    fn ring_target_has_wraparound_edge() {
        let t = Target::ring(4);
        let edges = t.coupling_map.unwrap();
        assert!(edges.contains(&(3, 0)));
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn all_to_all_has_no_coupling_map() {
        let t = Target::all_to_all();
        assert!(t.is_all_to_all());
        assert_eq!(t.effective_width(), None);
    }

    #[test]
    fn invalid_optimization_level_rejected() {
        let exec = ExecConfig::new("gate.aer_simulator").with_optimization_level(7);
        assert!(exec.validate().is_err());
    }

    #[test]
    fn zero_samples_rejected() {
        let exec = ExecConfig::new("gate.aer_simulator").with_samples(0);
        assert!(exec.validate().is_err());
    }

    #[test]
    fn self_loop_coupling_rejected() {
        let t = Target {
            basis_gates: vec![],
            coupling_map: Some(vec![(2, 2)]),
            num_qubits: None,
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn coupling_exceeding_num_qubits_rejected() {
        let t = Target {
            basis_gates: vec![],
            coupling_map: Some(vec![(0, 5)]),
            num_qubits: Some(4),
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn even_qec_distance_rejected() {
        let mut qec = QecConfig::surface(7);
        qec.distance = 6;
        assert!(qec.validate().is_err());
    }

    #[test]
    fn bad_beta_range_rejected() {
        let mut cfg = AnnealConfig::with_reads(100);
        cfg.beta_range = Some((2.0, 1.0));
        assert!(cfg.validate().is_err());
        cfg.beta_range = Some((0.0, 1.0));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn context_round_trip_preserves_extensions() {
        let ctx = ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(4096)
                .with_seed(42)
                .with_target(Target::ring(4))
                .with_optimization_level(2),
        )
        .with_extension("pulse", ParamValue::Map(Default::default()));
        let json = serde_json::to_string_pretty(&ctx).unwrap();
        let back: ContextDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn swapping_context_does_not_touch_intent_types() {
        // Portability claim at the type level: a context is a free-standing
        // artifact; building the anneal context never requires the gate one.
        let gate = ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(4096)
                .with_seed(42),
        );
        let anneal =
            ContextDescriptor::for_anneal("anneal.neal_simulator", AnnealConfig::with_reads(1000));
        assert_ne!(gate, anneal);
        gate.validate().unwrap();
        anneal.validate().unwrap();
    }
}
