//! Binding sets: the late-bound numeric parameter values of one job.
//!
//! The paper's late-binding rule (§3) separates a program's **symbolic
//! intent** (operators carrying `{"$param": "gamma_0"}` placeholders) from
//! the **values** a particular execution substitutes. A [`BindingSet`] is
//! that value half: an ordered `name → f64` map that travels with a
//! [`JobBundle`](crate::JobBundle) instead of being substituted into the
//! operators up front — so every point of a parameter sweep shares one
//! symbolic program (and therefore one transpiled plan), and the backend
//! binds values into the already-routed circuit at execute time.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::bundle::{fnv1a64_init, fnv1a64_update};
use crate::error::{QmlError, Result};
use crate::params::ParamValue;

/// Named numeric values for a job's late-bound symbolic parameters.
///
/// Ordered (BTreeMap) so the serialized form and the
/// [`fingerprint`](BindingSet::fingerprint) are reproducible.
///
/// ```
/// use qml_types::BindingSet;
///
/// let point = BindingSet::new().with("gamma_0", 0.4).with("beta_0", 0.3);
/// assert_eq!(point.get("gamma_0"), Some(0.4));
///
/// // values_for orders values by a plan's slot table, erroring on gaps.
/// let slots = ["beta_0".to_string(), "gamma_0".to_string()];
/// assert_eq!(point.values_for(&slots)?, vec![0.3, 0.4]);
///
/// // The fingerprint is value-sensitive: two jobs with equal symbolic
/// // programs and equal fingerprints realize the same concrete circuit.
/// let other = BindingSet::new().with("gamma_0", 0.5).with("beta_0", 0.3);
/// assert_ne!(point.fingerprint(), other.fingerprint());
/// # Ok::<(), qml_types::QmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BindingSet {
    /// Underlying ordered `symbol name → value` map.
    pub entries: BTreeMap<String, f64>,
}

impl BindingSet {
    /// An empty binding set.
    pub fn new() -> Self {
        BindingSet::default()
    }

    /// Insert (or replace) a binding, builder-style.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.entries.insert(name.into(), value);
        self
    }

    /// Insert (or replace) a binding in place.
    pub fn insert(&mut self, name: impl Into<String>, value: f64) {
        self.entries.insert(name.into(), value);
    }

    /// Look up a binding by symbol name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no binding is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the set binds the given symbol.
    pub fn binds(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Extract the numeric entries of a `ParamValue` binding map (the legacy
    /// sweep-dimension form), ignoring non-numeric values.
    pub fn from_param_values(bindings: &BTreeMap<String, ParamValue>) -> Self {
        BindingSet {
            entries: bindings
                .iter()
                .filter(|(_, v)| !matches!(v, ParamValue::Bool(_)))
                .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                .collect(),
        }
    }

    /// Convert to the `ParamValue` map accepted by
    /// [`JobBundle::bind`](crate::JobBundle::bind) (eager substitution).
    pub fn to_param_values(&self) -> BTreeMap<String, ParamValue> {
        self.entries
            .iter()
            .map(|(k, &v)| (k.clone(), ParamValue::Float(v)))
            .collect()
    }

    /// Values in the order of the given symbol names — the slot-table vector
    /// a parametric plan substitutes. Errors on the first missing symbol.
    pub fn values_for(&self, symbols: &[String]) -> Result<Vec<f64>> {
        symbols
            .iter()
            .map(|name| {
                self.get(name)
                    .ok_or_else(|| QmlError::UnboundParameter(name.clone()))
            })
            .collect()
    }

    /// Stable 64-bit signature of the binding set (names and exact bit
    /// patterns of the values). Two jobs with equal symbolic programs and
    /// equal binding fingerprints realize the same concrete program.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a64_init();
        for (name, value) in &self.entries {
            hash = fnv1a64_update(hash, name.as_bytes());
            hash = fnv1a64_update(hash, b"\x1f");
            hash = fnv1a64_update(hash, &value.to_bits().to_le_bytes());
            hash = fnv1a64_update(hash, b"\x1e");
        }
        hash
    }
}

impl FromIterator<(String, f64)> for BindingSet {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        BindingSet {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let b = BindingSet::new().with("gamma_0", 0.4).with("beta_0", 0.3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("gamma_0"), Some(0.4));
        assert!(b.binds("beta_0"));
        assert!(!b.binds("delta"));
    }

    #[test]
    fn values_for_orders_by_slot_table() {
        let b = BindingSet::new().with("b", 2.0).with("a", 1.0);
        let values = b.values_for(&["b".to_string(), "a".to_string()]).unwrap();
        assert_eq!(values, vec![2.0, 1.0]);
        assert!(matches!(
            b.values_for(&["missing".to_string()]),
            Err(QmlError::UnboundParameter(_))
        ));
    }

    #[test]
    fn fingerprint_distinguishes_values_and_names() {
        let a = BindingSet::new().with("g", 0.25);
        let b = BindingSet::new().with("g", 0.5);
        let c = BindingSet::new().with("h", 0.25);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn from_param_values_keeps_numerics_only() {
        let mut raw = BTreeMap::new();
        raw.insert("gamma".to_string(), ParamValue::Float(0.7));
        raw.insert("layers".to_string(), ParamValue::Int(2));
        raw.insert("label".to_string(), ParamValue::Str("x".into()));
        let b = BindingSet::from_param_values(&raw);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("gamma"), Some(0.7));
        assert_eq!(b.get("layers"), Some(2.0));
        assert!(!b.binds("label"));
    }

    #[test]
    fn serde_round_trip() {
        let b = BindingSet::new().with("gamma_0", 0.4);
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(json, r#"{"gamma_0":0.4}"#);
        let back: BindingSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
