//! Job bundles: packaging intent + context for submission (paper §4.4).
//!
//! "A packaging utility ... combine\[s\] the quantum data type, operators, and
//! optional context into a submission bundle (`job.json`)." A [`JobBundle`]
//! is that artifact. Its validation enforces the cross-descriptor rules the
//! paper requires of the algorithmic libraries: registers referenced by
//! operators must be declared, result schemas must match their registers, and
//! no operator may follow a measurement of the same register (the
//! "no hidden measurement/reset" non-interference rule).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::bindings::BindingSet;
use crate::class::ServiceClass;
use crate::context::ContextDescriptor;
use crate::error::{QmlError, Result};
use crate::params::ParamValue;
use crate::qdt::QuantumDataType;
use crate::qod::OperatorDescriptor;

/// Name of the JSON Schema governing job bundles.
pub const JOB_SCHEMA: &str = "job.schema.json";

/// A complete, submittable middle-layer job: typed registers, an operator
/// descriptor sequence, and an optional execution context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobBundle {
    /// JSON Schema identifier used to validate this artifact.
    #[serde(rename = "$schema", default = "default_job_schema")]
    pub schema: String,
    /// Human-readable job name.
    pub name: String,
    /// Declared quantum data types (registers).
    pub data_types: Vec<QuantumDataType>,
    /// Operator descriptor sequence, applied in order.
    pub operators: Vec<OperatorDescriptor>,
    /// Optional execution context (policy). Intent stays valid without it.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub context: Option<ContextDescriptor>,
    /// Late-bound values for the operators' symbolic parameters. Carried
    /// **next to** the intent rather than substituted into it, so every
    /// binding of one sweep shares the same symbolic program (and the same
    /// cached transpilation plan); backends substitute at execute time.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bindings: Option<BindingSet>,
    /// Scheduling class (policy, like the context): latency-critical with an
    /// optional deadline, or throughput-oriented (the default when absent).
    /// Excluded from every program hash — a latency job and a throughput job
    /// with identical intent share one transpiled plan.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub class: Option<ServiceClass>,
    /// Free-form metadata (provenance, workflow ids, ...).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub metadata: BTreeMap<String, ParamValue>,
}

fn default_job_schema() -> String {
    JOB_SCHEMA.to_string()
}

/// FNV-1a 64-bit offset basis — the workspace-wide seed for every stable
/// cache-key fingerprint (program hashes, binding fingerprints, backend
/// schedule fingerprints). Shared so the byte-for-byte hashing rules live in
/// exactly one place.
pub fn fnv1a64_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

/// Fold bytes into an FNV-1a 64-bit hash started by [`fnv1a64_init`].
pub fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fold a sequence of 64-bit words into one FNV-1a hash — the shared helper
/// behind compound keys (batch keys, plan keys) built from other hashes.
pub fn fnv1a64_words(words: &[u64]) -> u64 {
    words.iter().fold(fnv1a64_init(), |hash, w| {
        fnv1a64_update(hash, &w.to_le_bytes())
    })
}

impl JobBundle {
    /// Create a bundle from intent artifacts, without a context.
    pub fn new(
        name: impl Into<String>,
        data_types: Vec<QuantumDataType>,
        operators: Vec<OperatorDescriptor>,
    ) -> Self {
        JobBundle {
            schema: JOB_SCHEMA.to_string(),
            name: name.into(),
            data_types,
            operators,
            context: None,
            bindings: None,
            class: None,
            metadata: BTreeMap::new(),
        }
    }

    /// Attach (or replace) the execution context, builder-style. This is the
    /// only thing that changes when re-targeting a program: the intent
    /// artifacts are untouched.
    pub fn with_context(mut self, context: ContextDescriptor) -> Self {
        self.context = Some(context);
        self
    }

    /// Attach (or replace) the late-bound parameter values, builder-style.
    /// The operators keep their symbols; backends substitute at execute time.
    pub fn with_bindings(mut self, bindings: BindingSet) -> Self {
        self.bindings = Some(bindings);
        self
    }

    /// Set the scheduling class, builder-style. Like the context, the class
    /// is policy: it never changes what the program computes, only how the
    /// serving tier orders and batches it.
    pub fn with_service_class(mut self, class: ServiceClass) -> Self {
        self.class = Some(class);
        self
    }

    /// The effective scheduling class ([`ServiceClass::Throughput`] when
    /// none was set).
    pub fn service_class(&self) -> ServiceClass {
        self.class.unwrap_or_default()
    }

    /// Attach a metadata entry, builder-style.
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Look up a declared register by id.
    pub fn find_qdt(&self, id: &str) -> Option<&QuantumDataType> {
        self.data_types.iter().find(|q| q.id == id)
    }

    /// Total width (in carriers) across all declared registers.
    pub fn total_width(&self) -> usize {
        self.data_types.iter().map(|q| q.width).sum()
    }

    /// Starting carrier offset of each register when registers are laid out
    /// contiguously in declaration order (used by gate backends to assign
    /// physical wires).
    pub fn register_offsets(&self) -> BTreeMap<String, usize> {
        let mut offsets = BTreeMap::new();
        let mut offset = 0usize;
        for qdt in &self.data_types {
            offsets.insert(qdt.id.clone(), offset);
            offset += qdt.width;
        }
        offsets
    }

    /// Names of all unbound symbolic parameters across the operator sequence
    /// (sorted; ignores any attached [`BindingSet`]).
    pub fn unbound_symbols(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .operators
            .iter()
            .flat_map(|op| op.unbound_symbols())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The operators' symbolic parameters in **canonical order**: first
    /// appearance across the operator sequence (operators in program order,
    /// parameters in key order within each operator), deduplicated.
    ///
    /// This order is structural — it does not depend on the symbol *names* —
    /// so two programs that differ only in how their symbols are spelled
    /// assign the same canonical slot to corresponding parameters. It is the
    /// slot table of a parametric transpilation plan and the renaming basis
    /// of [`JobBundle::symbolic_program_hash`].
    pub fn canonical_symbols(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for op in &self.operators {
            for value in op.params.entries.values() {
                for symbol in value.symbols() {
                    if seen.insert(symbol.clone()) {
                        out.push(symbol);
                    }
                }
            }
        }
        out
    }

    /// True if the named symbol appears in this bundle's operators **only**
    /// in continuous-angle parameter positions
    /// ([`RepKind::is_angle_param`](crate::RepKind::is_angle_param)) — i.e.
    /// it can ride a [`BindingSet`] and be substituted into an
    /// already-transpiled parametric plan. A symbol used in any structural
    /// position (shape, edges, flags) — or not used at all — returns
    /// `false` and must be bound eagerly.
    pub fn symbol_is_angle_only(&self, name: &str) -> bool {
        let mut appears = false;
        for op in &self.operators {
            for (key, value) in &op.params.entries {
                if value.symbols().iter().any(|s| s == name) {
                    if !op.rep_kind.is_angle_param(key) {
                        return false;
                    }
                    appears = true;
                }
            }
        }
        appears
    }

    /// Late binding: substitute symbolic parameters and return the bound
    /// bundle. Unknown symbols are left in place (call
    /// [`JobBundle::ensure_bound`] before submission).
    pub fn bind(&self, bindings: &BTreeMap<String, ParamValue>) -> JobBundle {
        JobBundle {
            operators: self.operators.iter().map(|op| op.bind(bindings)).collect(),
            ..self.clone()
        }
    }

    /// Eagerly substitute the attached [`BindingSet`] (if any) into the
    /// operators, returning a fully concrete bundle with no attached
    /// bindings — the "bind-first" form used by backends whose realization
    /// depends on parameter values (e.g. BQM lowering).
    pub fn resolved(&self) -> JobBundle {
        match &self.bindings {
            None => self.clone(),
            Some(bindings) => {
                let mut out = self.bind(&bindings.to_param_values());
                out.bindings = None;
                out
            }
        }
    }

    /// Error if any operator symbol is neither bound in place nor covered by
    /// the attached [`BindingSet`].
    pub fn ensure_bound(&self) -> Result<()> {
        let missing = self.unbound_symbols().into_iter().find(|name| {
            !self
                .bindings
                .as_ref()
                .is_some_and(|bindings| bindings.binds(name))
        });
        match missing {
            Some(first) => Err(QmlError::UnboundParameter(first)),
            None => Ok(()),
        }
    }

    /// Full cross-descriptor validation:
    ///
    /// 1. every individual descriptor is structurally valid,
    /// 2. register ids are unique,
    /// 3. every operator references declared registers,
    /// 4. result schemas match the registers they read out,
    /// 5. **non-interference**: once a register has been measured, no further
    ///    operator may act on it (no hidden measurement/reset),
    /// 6. the context (if present) is valid.
    pub fn validate(&self) -> Result<()> {
        if self.name.trim().is_empty() {
            return Err(QmlError::Validation("job name must be non-empty".into()));
        }
        if self.schema != JOB_SCHEMA {
            return Err(QmlError::Validation(format!(
                "job bundle references unknown schema `{}` (expected `{JOB_SCHEMA}`)",
                self.schema
            )));
        }
        if self.data_types.is_empty() {
            return Err(QmlError::Validation(
                "job bundle must declare at least one quantum data type".into(),
            ));
        }
        let mut ids = BTreeSet::new();
        for qdt in &self.data_types {
            qdt.validate()?;
            if !ids.insert(qdt.id.clone()) {
                return Err(QmlError::Validation(format!(
                    "duplicate quantum data type id `{}`",
                    qdt.id
                )));
            }
        }

        let mut measured: BTreeSet<&str> = BTreeSet::new();
        for op in &self.operators {
            op.validate()?;
            let domain = self
                .find_qdt(&op.domain_qdt)
                .ok_or_else(|| QmlError::UnknownRegister(op.domain_qdt.clone()))?;
            let codomain = self
                .find_qdt(&op.codomain_qdt)
                .ok_or_else(|| QmlError::UnknownRegister(op.codomain_qdt.clone()))?;
            op.validate_against(domain, codomain)?;

            for touched in [op.domain_qdt.as_str(), op.codomain_qdt.as_str()] {
                if measured.contains(touched) {
                    return Err(QmlError::Validation(format!(
                        "operator `{}` acts on register `{touched}` after it has been measured \
                         (non-interference rule)",
                        op.name
                    )));
                }
            }
            if op.rep_kind.is_measurement() {
                measured.insert(op.codomain_qdt.as_str());
            }
        }

        if let Some(ctx) = &self.context {
            ctx.validate()?;
        }
        Ok(())
    }

    /// Hash of the declared data types and operator sequence, with an
    /// optional renaming applied to the operators' symbols.
    fn intent_hash(&self, rename: Option<&BTreeMap<String, ParamValue>>) -> u64 {
        let mut hash = fnv1a64_init();
        for qdt in &self.data_types {
            let json = serde_json::to_string(qdt).unwrap_or_default();
            hash = fnv1a64_update(hash, json.as_bytes());
            hash = fnv1a64_update(hash, b"\x1f");
        }
        hash = fnv1a64_update(hash, b"\x1e");
        for op in &self.operators {
            let renamed;
            let op = match rename {
                Some(map) => {
                    renamed = op.bind(map);
                    &renamed
                }
                None => op,
            };
            let json = serde_json::to_string(op).unwrap_or_default();
            hash = fnv1a64_update(hash, json.as_bytes());
            hash = fnv1a64_update(hash, b"\x1f");
        }
        hash
    }

    /// Stable 64-bit hash of the bundle's **realized program** — the declared
    /// data types, the operator sequence, and the attached [`BindingSet`]
    /// (when present) — excluding the execution context and free-form
    /// metadata.
    ///
    /// Two bundles with equal `program_hash` lower to identical circuits /
    /// quadratic models, so the hash is the program half of a realization
    /// cache key: re-submitting the same intent under a different context (or
    /// under the same context in a shot/seed sweep) can reuse the lowered
    /// artifact. The hash is computed over the canonical JSON encoding, so it
    /// is stable across processes and runs.
    pub fn program_hash(&self) -> u64 {
        let mut hash = self.intent_hash(None);
        if let Some(bindings) = &self.bindings {
            hash = fnv1a64_update(hash, b"\x1d");
            hash = fnv1a64_update(hash, &bindings.fingerprint().to_le_bytes());
        }
        hash
    }

    /// Stable 64-bit hash of the bundle's **symbolic program**: like
    /// [`JobBundle::program_hash`] but (i) excluding any attached
    /// [`BindingSet`] and (ii) with every symbol renamed to its canonical
    /// slot (`$0`, `$1`, ... in [`JobBundle::canonical_symbols`] order).
    ///
    /// Every point of a parameter sweep — and any two sweeps that differ only
    /// in symbol spelling — therefore shares one symbolic hash, which is what
    /// lets an N-point angle scan share a single parametric transpilation
    /// plan instead of transpiling N times.
    pub fn symbolic_program_hash(&self) -> u64 {
        let symbols = self.canonical_symbols();
        if symbols.is_empty() {
            return self.intent_hash(None);
        }
        let rename: BTreeMap<String, ParamValue> = symbols
            .iter()
            .enumerate()
            .map(|(slot, name)| (name.clone(), ParamValue::symbol(format!("${slot}"))))
            .collect();
        self.intent_hash(Some(&rename))
    }

    /// Serialize to the `job.json` interchange form (pretty-printed).
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parse a `job.json` artifact and validate it.
    pub fn from_json(json: &str) -> Result<Self> {
        let bundle: JobBundle = serde_json::from_str(json)?;
        bundle.validate()?;
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{AnnealConfig, ContextDescriptor, ExecConfig, Target};
    use crate::cost::CostHint;
    use crate::qod::RepKind;
    use crate::result_schema::ResultSchema;

    fn ising_qdt() -> QuantumDataType {
        QuantumDataType::ising_spins("ising_vars", "s", 4).unwrap()
    }

    fn prep(reg: &str) -> OperatorDescriptor {
        OperatorDescriptor::builder("prep", RepKind::PrepUniform, reg)
            .build()
            .unwrap()
    }

    fn measure(qdt: &QuantumDataType) -> OperatorDescriptor {
        OperatorDescriptor::builder("measure", RepKind::Measurement, &qdt.id)
            .result_schema(ResultSchema::for_register(qdt))
            .build()
            .unwrap()
    }

    fn simple_bundle() -> JobBundle {
        let qdt = ising_qdt();
        let ops = vec![prep("ising_vars"), measure(&qdt)];
        JobBundle::new("maxcut", vec![qdt], ops)
    }

    #[test]
    fn bundle_validates_and_round_trips() {
        let bundle = simple_bundle();
        bundle.validate().unwrap();
        let json = bundle.to_json().unwrap();
        let back = JobBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        assert!(json.contains("\"$schema\""));
    }

    #[test]
    fn unknown_register_rejected() {
        let qdt = ising_qdt();
        let ops = vec![prep("not_declared")];
        let bundle = JobBundle::new("bad", vec![qdt], ops);
        assert!(matches!(
            bundle.validate(),
            Err(QmlError::UnknownRegister(_))
        ));
    }

    #[test]
    fn duplicate_register_rejected() {
        let bundle = JobBundle::new("dup", vec![ising_qdt(), ising_qdt()], vec![]);
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn empty_data_types_rejected() {
        let bundle = JobBundle::new("empty", vec![], vec![]);
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn non_interference_rule_enforced() {
        let qdt = ising_qdt();
        let ops = vec![prep("ising_vars"), measure(&qdt), prep("ising_vars")];
        let bundle = JobBundle::new("post-measure", vec![qdt], ops);
        let err = bundle.validate().unwrap_err();
        assert!(err.to_string().contains("non-interference"), "{err}");
    }

    #[test]
    fn operating_on_other_register_after_measurement_is_fine() {
        let a = QuantumDataType::ising_spins("a", "a", 2).unwrap();
        let b = QuantumDataType::ising_spins("b", "b", 2).unwrap();
        let ops = vec![prep("a"), measure(&a), prep("b"), measure(&b)];
        let bundle = JobBundle::new("two-regs", vec![a, b], ops);
        bundle.validate().unwrap();
    }

    #[test]
    fn register_offsets_are_contiguous() {
        let a = QuantumDataType::ising_spins("a", "a", 3).unwrap();
        let b = QuantumDataType::int_register("b", "b", 5).unwrap();
        let bundle = JobBundle::new("layout", vec![a, b], vec![]);
        let offsets = bundle.register_offsets();
        assert_eq!(offsets["a"], 0);
        assert_eq!(offsets["b"], 3);
        assert_eq!(bundle.total_width(), 8);
    }

    #[test]
    fn context_swap_preserves_intent() {
        let bundle = simple_bundle();
        let gate = bundle.clone().with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator")
                .with_samples(4096)
                .with_seed(42)
                .with_target(Target::ring(4)),
        ));
        let anneal = bundle.clone().with_context(ContextDescriptor::for_anneal(
            "anneal.neal_simulator",
            AnnealConfig::with_reads(1000),
        ));
        gate.validate().unwrap();
        anneal.validate().unwrap();
        // The intent artifacts are bit-identical across both targets.
        assert_eq!(gate.data_types, anneal.data_types);
        assert_eq!(gate.operators, anneal.operators);
        assert_ne!(gate.context, anneal.context);
    }

    #[test]
    fn late_binding_round_trip() {
        let qdt = ising_qdt();
        let cost = OperatorDescriptor::builder("cost", RepKind::IsingCostPhase, "ising_vars")
            .param("gamma", ParamValue::symbol("gamma_0"))
            .cost_hint(CostHint::gates(4, 8))
            .build()
            .unwrap();
        let bundle = JobBundle::new("qaoa", vec![qdt], vec![cost]);
        assert_eq!(bundle.unbound_symbols(), vec!["gamma_0".to_string()]);
        assert!(bundle.ensure_bound().is_err());

        let mut bindings = BTreeMap::new();
        bindings.insert("gamma_0".to_string(), ParamValue::Float(0.9));
        let bound = bundle.bind(&bindings);
        bound.ensure_bound().unwrap();
        bound.validate().unwrap();
        // Binding never mutates the original (intent artifacts are immutable).
        assert!(bundle.ensure_bound().is_err());
    }

    #[test]
    fn invalid_context_rejected_at_bundle_level() {
        let bundle = simple_bundle().with_context(ContextDescriptor::for_gate(
            ExecConfig::new("gate.aer_simulator").with_samples(0),
        ));
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(JobBundle::from_json("{ not json").is_err());
        assert!(JobBundle::from_json("{}").is_err());
    }

    #[test]
    fn program_hash_ignores_context_and_metadata() {
        let bundle = simple_bundle();
        let with_ctx = bundle.clone().with_context(ContextDescriptor::for_anneal(
            "anneal.neal_simulator",
            AnnealConfig::with_reads(100),
        ));
        let with_meta = bundle.clone().with_metadata("workflow", "w");
        assert_eq!(bundle.program_hash(), with_ctx.program_hash());
        assert_eq!(bundle.program_hash(), with_meta.program_hash());
    }

    #[test]
    fn program_hash_sees_intent_changes() {
        let base = simple_bundle();
        let qdt = ising_qdt();
        let reordered = JobBundle::new("maxcut", vec![qdt.clone()], vec![measure(&qdt)]);
        assert_ne!(base.program_hash(), reordered.program_hash());

        // Binding a symbol changes the realized program, so it changes the hash.
        let cost = OperatorDescriptor::builder("cost", RepKind::IsingCostPhase, "ising_vars")
            .param("gamma", ParamValue::symbol("g"))
            .build()
            .unwrap();
        let symbolic = JobBundle::new("qaoa", vec![ising_qdt()], vec![cost]);
        let mut bindings = BTreeMap::new();
        bindings.insert("g".to_string(), ParamValue::Float(0.4));
        assert_ne!(
            symbolic.program_hash(),
            symbolic.bind(&bindings).program_hash()
        );
    }

    fn symbolic_qaoa_like(gamma_name: &str, beta_name: &str) -> JobBundle {
        let cost = OperatorDescriptor::builder("cost", RepKind::IsingCostPhase, "ising_vars")
            .param("gamma", ParamValue::symbol(gamma_name))
            .build()
            .unwrap();
        let mixer = OperatorDescriptor::builder("mixer", RepKind::MixerRx, "ising_vars")
            .param("beta", ParamValue::symbol(beta_name))
            .build()
            .unwrap();
        JobBundle::new("qaoa", vec![ising_qdt()], vec![cost, mixer])
    }

    #[test]
    fn canonical_symbols_follow_first_appearance() {
        let bundle = symbolic_qaoa_like("zz_gamma", "aa_beta");
        // Appearance order (cost layer first), not lexicographic order.
        assert_eq!(
            bundle.canonical_symbols(),
            vec!["zz_gamma".to_string(), "aa_beta".to_string()]
        );
        assert_eq!(
            bundle.unbound_symbols(),
            vec!["aa_beta".to_string(), "zz_gamma".to_string()]
        );
    }

    #[test]
    fn symbolic_hash_shared_across_bindings_and_spellings() {
        let bundle = symbolic_qaoa_like("gamma_0", "beta_0");
        let a = bundle.clone().with_bindings(
            crate::BindingSet::new()
                .with("gamma_0", 0.2)
                .with("beta_0", 0.3),
        );
        let b = bundle.clone().with_bindings(
            crate::BindingSet::new()
                .with("gamma_0", 0.9)
                .with("beta_0", 0.1),
        );
        // One symbolic program: every binding shares the hash...
        assert_eq!(a.symbolic_program_hash(), b.symbolic_program_hash());
        assert_eq!(a.symbolic_program_hash(), bundle.symbolic_program_hash());
        // ...while realized programs stay distinct.
        assert_ne!(a.program_hash(), b.program_hash());

        // Renamed symbols canonicalize to the same slot assignment.
        let renamed = symbolic_qaoa_like("g", "b");
        assert_eq!(
            renamed.symbolic_program_hash(),
            bundle.symbolic_program_hash()
        );
        // But a structurally different program does not collide.
        let swapped = symbolic_qaoa_like("beta_0", "gamma_0");
        assert_eq!(
            swapped.symbolic_program_hash(),
            bundle.symbolic_program_hash()
        );
        assert_ne!(
            symbolic_qaoa_like("gamma_0", "gamma_0").symbolic_program_hash(),
            bundle.symbolic_program_hash(),
            "sharing one symbol across layers is a different program shape"
        );
    }

    #[test]
    fn attached_bindings_satisfy_ensure_bound_and_resolve() {
        let bundle = symbolic_qaoa_like("gamma_0", "beta_0");
        assert!(bundle.ensure_bound().is_err());

        let partly = bundle
            .clone()
            .with_bindings(crate::BindingSet::new().with("gamma_0", 0.4));
        assert!(matches!(
            partly.ensure_bound(),
            Err(QmlError::UnboundParameter(name)) if name == "beta_0"
        ));

        let fully = bundle.with_bindings(
            crate::BindingSet::new()
                .with("gamma_0", 0.4)
                .with("beta_0", 0.3),
        );
        fully.ensure_bound().unwrap();

        let resolved = fully.resolved();
        assert!(resolved.bindings.is_none());
        assert!(resolved.unbound_symbols().is_empty());
        // Resolving matches eager binding through the legacy map API.
        let mut map = BTreeMap::new();
        map.insert("gamma_0".to_string(), ParamValue::Float(0.4));
        map.insert("beta_0".to_string(), ParamValue::Float(0.3));
        assert_eq!(resolved.operators, fully.bind(&map).operators);
        // program_hash of the resolved bundle is a concrete program hash.
        assert_eq!(resolved.program_hash(), resolved.symbolic_program_hash());
    }

    #[test]
    fn bindings_round_trip_through_json() {
        let bundle = symbolic_qaoa_like("gamma_0", "beta_0").with_bindings(
            crate::BindingSet::new()
                .with("gamma_0", 0.4)
                .with("beta_0", 0.3),
        );
        let json = bundle.to_json().unwrap();
        assert!(json.contains("bindings"));
        let back = JobBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        back.ensure_bound().unwrap();
    }

    #[test]
    fn metadata_round_trips() {
        let bundle = simple_bundle()
            .with_metadata("workflow", "maxcut-demo")
            .with_metadata("revision", 3);
        let json = bundle.to_json().unwrap();
        let back = JobBundle::from_json(&json).unwrap();
        assert_eq!(back.metadata.len(), 2);
    }
}
