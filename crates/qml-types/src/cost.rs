//! Device-independent cost hints.
//!
//! The paper's motivational example (§2) observes that without cost metadata
//! "a scheduler cannot choose an appropriate backend and topology, or estimate
//! queue and runtime", and proposes a `cost_hint` attached to each operator,
//! "analogous to FLOP counts and communication estimates used by HPC
//! schedulers". [`CostHint`] is that record.

use serde::{Deserialize, Serialize};

/// Advisory, device-independent cost estimate attached to an operator
/// descriptor. All fields are optional; absent fields mean "unknown".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostHint {
    /// Estimated number of two-qubit (entangling) gates.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub twoq: Option<u64>,
    /// Estimated number of single-qubit gates.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub oneq: Option<u64>,
    /// Estimated circuit depth.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub depth: Option<u64>,
    /// Estimated number of ancilla carriers required.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ancillas: Option<u64>,
    /// Estimated inter-device communication volume (e.g. teleportations).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub communication: Option<u64>,
    /// Estimated wall-clock duration in microseconds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub duration_us: Option<f64>,
}

impl CostHint {
    /// An empty (all-unknown) hint.
    pub fn unknown() -> Self {
        CostHint::default()
    }

    /// Hint carrying only gate counts and depth — the form used in the
    /// paper's Listing 3 (`{"twoq": 45, "depth": 100}`).
    pub fn gates(twoq: u64, depth: u64) -> Self {
        CostHint {
            twoq: Some(twoq),
            depth: Some(depth),
            ..CostHint::default()
        }
    }

    /// Builder-style setter for the single-qubit gate count.
    pub fn with_oneq(mut self, oneq: u64) -> Self {
        self.oneq = Some(oneq);
        self
    }

    /// Builder-style setter for the ancilla demand.
    pub fn with_ancillas(mut self, ancillas: u64) -> Self {
        self.ancillas = Some(ancillas);
        self
    }

    /// Builder-style setter for communication volume.
    pub fn with_communication(mut self, communication: u64) -> Self {
        self.communication = Some(communication);
        self
    }

    /// Builder-style setter for expected duration.
    pub fn with_duration_us(mut self, duration_us: f64) -> Self {
        self.duration_us = Some(duration_us);
        self
    }

    /// Element-wise sum of two hints. Unknown fields propagate: a field is
    /// present in the sum only if it is present in **both** operands, so the
    /// aggregate never over-claims precision.
    pub fn saturating_add(&self, other: &CostHint) -> CostHint {
        fn add(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            }
        }
        CostHint {
            twoq: add(self.twoq, other.twoq),
            oneq: add(self.oneq, other.oneq),
            depth: add(self.depth, other.depth),
            ancillas: match (self.ancillas, other.ancillas) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
            communication: add(self.communication, other.communication),
            duration_us: match (self.duration_us, other.duration_us) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    /// A scalar "weight" used by the runtime scheduler to rank backends:
    /// two-qubit gates dominate, depth is a tie-breaker. Unknown fields count
    /// as zero (the scheduler treats missing hints as "cheap but uncertain").
    pub fn scheduling_weight(&self) -> f64 {
        let twoq = self.twoq.unwrap_or(0) as f64;
        let oneq = self.oneq.unwrap_or(0) as f64;
        let depth = self.depth.unwrap_or(0) as f64;
        let comm = self.communication.unwrap_or(0) as f64;
        10.0 * twoq + oneq + 0.5 * depth + 50.0 * comm
    }

    /// True if every field is unknown.
    pub fn is_unknown(&self) -> bool {
        self.twoq.is_none()
            && self.oneq.is_none()
            && self.depth.is_none()
            && self.ancillas.is_none()
            && self.communication.is_none()
            && self.duration_us.is_none()
    }
}

/// One **observed** execution cost, paired with the estimate a scheduler
/// charged for it at dispatch time.
///
/// [`CostHint`] is the a-priori side of the paper's HPC-scheduler analogy;
/// `MeasuredCost` is the a-posteriori side: what the job actually cost once
/// a backend ran it. Feedback-driven schedulers (the serving tier's
/// measured-cost fairness loop) reconcile the two — correcting a tenant's
/// budget by the estimate error and folding the measurement into an online
/// cost model keyed by `plan_key`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredCost {
    /// Grouping key of the realization plan the job executed under — the
    /// same device-level batch key used for micro-batching — so repeated
    /// submissions of one plan share a cost model entry. `None` when the
    /// job had no plan identity (failed placement, non-batching backend).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub plan_key: Option<u64>,
    /// The cost charged at dispatch, in abstract scheduler cost units.
    pub estimated: f64,
    /// Observed busy wall-clock, in seconds.
    pub seconds: f64,
}

impl MeasuredCost {
    /// A measurement reconciling `estimated` cost units against `seconds`
    /// of observed busy time under plan `plan_key`.
    pub fn new(plan_key: Option<u64>, estimated: f64, seconds: f64) -> Self {
        MeasuredCost {
            plan_key,
            estimated,
            seconds,
        }
    }

    /// The signed estimate error in cost units, under a conversion of
    /// `units_per_second` cost units per busy-second: positive means the
    /// job was under-estimated (it cost more than it was charged).
    pub fn error_units(&self, units_per_second: f64) -> f64 {
        self.seconds * units_per_second - self.estimated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cost_error_sign() {
        // Charged 2 units, actually ran 10 ms at 1000 units/s = 10 units:
        // under-estimated by 8.
        let m = MeasuredCost::new(Some(7), 2.0, 0.010);
        assert!((m.error_units(1000.0) - 8.0).abs() < 1e-12);
        // Over-estimated jobs report a negative error.
        let m = MeasuredCost::new(None, 20.0, 0.010);
        assert!((m.error_units(1000.0) + 10.0).abs() < 1e-12);
        let json = serde_json::to_string(&m).unwrap();
        let back: MeasuredCost = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn listing3_form_serializes_without_unknowns() {
        let hint = CostHint::gates(45, 100);
        let json = serde_json::to_string(&hint).unwrap();
        assert_eq!(json, r#"{"twoq":45,"depth":100}"#);
    }

    #[test]
    fn round_trip_full() {
        let hint = CostHint::gates(45, 100)
            .with_oneq(30)
            .with_ancillas(2)
            .with_communication(0)
            .with_duration_us(12.5);
        let json = serde_json::to_string(&hint).unwrap();
        let back: CostHint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hint);
    }

    #[test]
    fn sum_requires_both_operands_known() {
        let a = CostHint::gates(10, 20);
        let b = CostHint {
            twoq: Some(5),
            ..CostHint::default()
        };
        let sum = a.saturating_add(&b);
        assert_eq!(sum.twoq, Some(15));
        assert_eq!(sum.depth, None, "depth unknown in b, so unknown in sum");
    }

    #[test]
    fn ancillas_take_max_not_sum() {
        let a = CostHint {
            ancillas: Some(3),
            ..CostHint::default()
        };
        let b = CostHint {
            ancillas: Some(5),
            ..CostHint::default()
        };
        assert_eq!(a.saturating_add(&b).ancillas, Some(5));
    }

    #[test]
    fn scheduling_weight_ranks_twoq_heavier_than_depth() {
        let shallow_but_entangling = CostHint::gates(100, 10);
        let deep_but_local = CostHint::gates(10, 500);
        assert!(
            shallow_but_entangling.scheduling_weight() > deep_but_local.scheduling_weight(),
            "two-qubit count should dominate the ranking"
        );
    }

    #[test]
    fn unknown_hint() {
        assert!(CostHint::unknown().is_unknown());
        assert!(!CostHint::gates(1, 1).is_unknown());
        assert_eq!(CostHint::unknown().scheduling_weight(), 0.0);
    }
}
