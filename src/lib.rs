//! Workspace facade crate.
//!
//! Exists so the repository-level `tests/` and `examples/` directories are
//! cargo targets; applications should depend on [`qml_core`] (the layer
//! facade) or [`qml_service`] (the batch-execution service) directly.

#![forbid(unsafe_code)]

pub use qml_core;
pub use qml_service;
