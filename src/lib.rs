//! Workspace facade crate.
//!
//! Exists so the repository-level `tests/` and `examples/` directories are
//! cargo targets; applications should depend on [`qml_core`] (the layer
//! facade) or [`qml_service`] (the batch-execution service) directly.

#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub use qml_core;
pub use qml_service;
